package rayfade

// Integration tests exercising chains of modules through the public API —
// the cross-cutting invariants no single package can check alone.

import (
	"math"
	"testing"

	"rayfade/internal/fading"
	"rayfade/internal/opt"
	"rayfade/internal/rng"
	"rayfade/internal/sinr"
	"rayfade/internal/transform"
)

// The full reduction chain on exhaustively solvable instances: compute the
// true non-fading optimum AND the true "Rayleigh optimum over deterministic
// transmit sets" (the best expected success count over all 2^n subsets),
// then check both directions of the paper's relationship:
//
//	rayleighOPT ≥ nonFadingOPT / e              (Lemma 2)
//	rayleighOPT ≤ C·log*(n) · nonFadingOPT      (Theorem 2; C small here)
func TestReductionChainExhaustive(t *testing.T) {
	for seed := uint64(0); seed < 6; seed++ {
		cfg := Figure1Workload()
		cfg.N = 10
		scn, err := NewScenario(cfg, 2.5, seed+600)
		if err != nil {
			t.Fatal(err)
		}
		m := scn.Network().Gains()

		nfOPT := float64(len(scn.ExactOptimum()))

		rayleighOPT := 0.0
		n := scn.N()
		for mask := 1; mask < 1<<n; mask++ {
			var set []int
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					set = append(set, i)
				}
			}
			if v := fading.ExpectedBinaryValueOfSet(m, set, 2.5); v > rayleighOPT {
				rayleighOPT = v
			}
		}

		if rayleighOPT < nfOPT/math.E-1e-9 {
			t.Fatalf("seed %d: Rayleigh OPT %.3f below nonfading OPT/e = %.3f",
				seed, rayleighOPT, nfOPT/math.E)
		}
		// On these instances the factor is near 1; allow 2 to stay robust
		// while still far below any log* allowance.
		if nfOPT > 0 && rayleighOPT > 2*nfOPT {
			t.Fatalf("seed %d: Rayleigh OPT %.3f exceeds 2×nonfading OPT %.0f",
				seed, rayleighOPT, nfOPT)
		}
	}
}

// End-to-end determinism: every stochastic stage of the pipeline replays
// identically for the same seed.
func TestPipelineDeterministic(t *testing.T) {
	run := func() (sizes [3]int, exp float64, slots int, regretVal float64) {
		cfg := Figure1Workload()
		cfg.N = 50
		scn, err := NewScenario(cfg, 2.5, 777)
		if err != nil {
			t.Fatal(err)
		}
		greedy := scn.GreedyCapacity()
		est := scn.OptimumEstimate()
		pc := scn.PowerControlCapacity()
		sizes = [3]int{len(greedy), len(est), len(pc.Set)}
		exp = scn.ExpectedRayleighSuccesses(greedy)
		sched, err := scn.RepeatedCapacitySchedule()
		if err != nil {
			t.Fatal(err)
		}
		slots, done := scn.PlayScheduleRayleigh(sched, 500)
		if !done {
			t.Fatal("replay incomplete")
		}
		regretVal = scn.RunRegretLearning(60, true).MaxAverageRegret()
		return sizes, exp, slots, regretVal
	}
	s1, e1, sl1, r1 := run()
	s2, e2, sl2, r2 := run()
	if s1 != s2 || e1 != e2 || sl1 != sl2 || r1 != r2 {
		t.Fatalf("pipeline not deterministic: %v/%v %g/%g %d/%d %g/%g",
			s1, s2, e1, e2, sl1, sl2, r1, r2)
	}
}

// A power-control solution evaluated through the fading layer: the set
// selected with chosen powers must keep the Lemma-2 guarantee when its
// powers are applied — i.e. the reduction composes with power control.
func TestPowerControlComposesWithTransfer(t *testing.T) {
	cfg := Figure1Workload()
	cfg.N = 40
	scn, err := NewScenario(cfg, 2.5, 888)
	if err != nil {
		t.Fatal(err)
	}
	pc := scn.PowerControlCapacity()
	powered := pc.ApplyPowers(scn.Network())
	m := powered.Gains()
	if !sinr.Feasible(m, pc.Set, 2.5*(1-1e-9)) {
		t.Fatal("power-control set infeasible under its powers")
	}
	exp := fading.ExpectedBinaryValueOfSet(m, pc.Set, 2.5)
	if floor := float64(len(pc.Set)) / math.E; exp < floor-1e-9 {
		t.Fatalf("expected fading value %.3f below Lemma-2 floor %.3f", exp, floor)
	}
}

// The latency schedule produced by repeated capacity, transformed per
// Section 4 and replayed under Rayleigh fading, must serve every link —
// and the regret learner on the same instance must reach a throughput
// consistent with the schedule's slot count (throughput ≈ n / slots within
// a generous factor).
func TestLatencyAndRegretConsistency(t *testing.T) {
	cfg := Figure2Workload()
	cfg.N = 80
	scn, err := NewScenario(cfg, 0.5, 999)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := scn.RepeatedCapacitySchedule()
	if err != nil {
		t.Fatal(err)
	}
	perSlot := float64(scn.N()) / float64(len(sched))
	h := scn.RunRegretLearning(150, false)
	converged := h.AverageSuccesses(50)
	if converged < perSlot/6 {
		t.Fatalf("regret throughput %.1f far below schedule throughput %.1f", converged, perSlot)
	}
}

// Algorithm 1's schedule replayed through the latency machinery: expanding
// each step's slots and playing them in the NON-fading model must give each
// link at least the per-step success probability the theorem argues about —
// operationally, a large fraction of links succeed at least once.
func TestSimulationSchedulePlaysThroughLatency(t *testing.T) {
	cfg := Figure1Workload()
	cfg.N = 40
	scn, err := NewScenario(cfg, 2.5, 1111)
	if err != nil {
		t.Fatal(err)
	}
	q := scn.UniformProbs(1)
	steps := scn.SimulationSchedule(q)
	src := rng.New(5)
	m := scn.Network().Gains()
	best := transform.RunScheduleOnce(m, steps, src)
	succeeded := 0
	for _, v := range best {
		if v >= 2.5 {
			succeeded++
		}
	}
	if succeeded < scn.N()/4 {
		t.Fatalf("only %d of %d links ever reached β across the whole simulation", succeeded, scn.N())
	}
}

// Local search through the facade agrees with the exact optimum on
// exhaustively checkable sizes (integration of opt + facade + sinr).
func TestOptimumEstimateNearExactSmall(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		cfg := Figure1Workload()
		cfg.N = 13
		scn, err := NewScenario(cfg, 2.5, 1300+seed)
		if err != nil {
			t.Fatal(err)
		}
		exact := len(scn.ExactOptimum())
		est := len(scn.OptimumEstimate())
		if est > exact {
			t.Fatalf("seed %d: estimate %d beats exact %d", seed, est, exact)
		}
		if est < exact-1 {
			t.Fatalf("seed %d: estimate %d far below exact %d", seed, est, exact)
		}
	}
}

// Scale smoke test: the full pipeline stays correct and tractable at 3× the
// paper's network size. Guarded by -short for quick iteration.
func TestLargeNetworkSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := Figure1Workload()
	cfg.N = 300
	scn, err := NewScenario(cfg, 2.5, 3000)
	if err != nil {
		t.Fatal(err)
	}
	set := scn.GreedyCapacity()
	if len(set) == 0 || !scn.Feasible(set) {
		t.Fatalf("greedy at n=300: %d links, feasible=%v", len(set), scn.Feasible(set))
	}
	exp := scn.ExpectedRayleighSuccesses(set)
	if exp < float64(len(set))/math.E {
		t.Fatalf("Lemma-2 floor broken at scale: %g < %g", exp, float64(len(set))/math.E)
	}
	sched, err := scn.RepeatedCapacitySchedule()
	if err != nil {
		t.Fatal(err)
	}
	if _, done := scn.PlayScheduleRayleigh(sched, 500); !done {
		t.Fatal("Rayleigh replay incomplete at n=300")
	}
	h := scn.RunRegretLearning(50, true)
	if h.AverageSuccesses(10) <= 0 {
		t.Fatal("regret learning degenerate at n=300")
	}
}

// Guard the brute-force cap through the facade.
func TestExactOptimumPanicsOnLargeN(t *testing.T) {
	cfg := Figure1Workload()
	cfg.N = opt.MaxBruteForceN + 1
	scn, err := NewScenario(cfg, 2.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	scn.ExactOptimum()
}
