// Latency minimization in both interference models: build a non-fading
// schedule by repeated capacity maximization, replay it under Rayleigh
// fading with the Section-4 repetition transformation, and compare against
// the distributed ALOHA-style protocol — including a small multi-hop demo.
package main

import (
	"fmt"
	"log"

	"rayfade"
	"rayfade/internal/capacity"
	"rayfade/internal/latency"
	"rayfade/internal/rng"
	"rayfade/internal/stats"
	"rayfade/internal/transform"
)

func main() {
	const beta = 2.5
	scn, err := rayfade.NewScenario(rayfade.Figure1Workload(), beta, 11)
	if err != nil {
		log.Fatal(err)
	}
	n := scn.N()

	// Centralized: repeated single-slot capacity maximization.
	slots, err := scn.RepeatedCapacitySchedule()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("non-fading schedule: all %d links served in %d slots\n", n, len(slots))

	// Rayleigh replay: each slot executed 4× (Section-4 transformation),
	// repeated until every link has succeeded once.
	var replay stats.Running
	for trial := 0; trial < 10; trial++ {
		used, done := scn.PlayScheduleRayleigh(slots, 1000)
		if !done {
			log.Fatal("rayleigh replay incomplete")
		}
		replay.Add(float64(used))
	}
	fmt.Printf("rayleigh replay (%d× repeats): %s slots\n", transform.AlohaRepeats, replay.Summarize())

	// Distributed: ALOHA-style contention in both models.
	var nf, rl stats.Running
	for trial := 0; trial < 10; trial++ {
		a := scn.Aloha(0.1, false)
		if a.Done {
			nf.Add(float64(a.Slots))
		}
		b := scn.Aloha(0.1, true)
		if b.Done {
			rl.Add(float64(b.Slots))
		}
	}
	fmt.Printf("ALOHA p=0.1          non-fading: %s slots\n", nf.Summarize())
	fmt.Printf("ALOHA p=0.1, 4×      rayleigh:   %s slots\n", rl.Summarize())

	// Multi-hop: forward two packets along 3-hop and 2-hop routes; hop h+1
	// only after hop h delivered (store-and-forward).
	m := scn.Network().Gains()
	capFn := latency.GreedyCapacity(capacity.LengthOrder(scn.Network()), capacity.DefaultTau)
	paths := []latency.Path{{0, 7, 19}, {3, 12}}
	slotsMH, done := latency.MultiHop(m, beta, paths, capFn, 0, latency.NonFading{})
	fmt.Printf("multi-hop (non-fading): 2 packets delivered in %d slots (done=%v)\n", slotsMH, done)
	src := rng.New(99)
	slotsMHR, doneR := latency.MultiHop(m, beta, paths, capFn, 100000, latency.Rayleigh{Src: src})
	fmt.Printf("multi-hop (rayleigh):   2 packets delivered in %d slots (done=%v)\n", slotsMHR, doneR)
}
