// Graph models vs SINR truth: the example behind the paper's motivation.
// A binary conflict graph looks like a reasonable interference abstraction,
// but it cannot see the ACCUMULATION of many individually-harmless
// interferers — so its "feasible" schedules break the real SINR constraint,
// while the SINR-aware algorithms (which the paper then carries to Rayleigh
// fading) never over-claim.
package main

import (
	"fmt"
	"log"

	"rayfade"
)

func main() {
	scn, err := rayfade.NewScenario(rayfade.Figure1Workload(), 2.5, 99)
	if err != nil {
		log.Fatal(err)
	}

	claimed, valid := scn.ConflictGraphCapacity(0.5)
	fmt.Printf("conflict-graph independent set: %d links claimed\n", len(claimed))
	fmt.Printf("  actually SINR-feasible:       %d links (%.0f%% violations)\n",
		len(valid), 100*float64(len(claimed)-len(valid))/float64(len(claimed)))
	fmt.Printf("  whole claimed set feasible?   %v\n\n", scn.Feasible(claimed))

	sinrSet := scn.GreedyCapacity()
	fmt.Printf("SINR-aware greedy:              %d links, all feasible: %v\n",
		len(sinrSet), scn.Feasible(sinrSet))

	// And only the sound set carries a fading guarantee: Lemma 2 applies to
	// the non-fading VALUE, which for the graph set is its valid subset.
	rep := scn.TransferToRayleigh(sinrSet)
	fmt.Printf("  under Rayleigh fading:        E[successes] = %.1f (floor %.1f)\n",
		scn.ExpectedRayleighSuccesses(sinrSet), rep.GuaranteedValue)

	fmt.Println("\nthe gap between 'claimed' and 'valid' is interference accumulation —")
	fmt.Println("exactly what moved the field from graph-based to SINR-based models,")
	fmt.Println("and what this paper then extends from SINR to Rayleigh fading.")
}
