// Multi-hop scheduling end to end: place nodes at random, build the
// geometric connectivity graph, route packets by minimum hops, convert the
// routes into a link network, and schedule the hops store-and-forward in
// both interference models — the setting the paper's Section 4 extends its
// single-hop transformations to.
package main

import (
	"fmt"
	"log"

	"rayfade/internal/capacity"
	"rayfade/internal/geom"
	"rayfade/internal/latency"
	"rayfade/internal/multihop"
	"rayfade/internal/network"
	"rayfade/internal/rng"
	"rayfade/internal/stats"
)

func main() {
	const (
		nodes   = 80
		radius  = 160.0
		packets = 12
		beta    = 2.5
		alpha   = 2.5
		noise   = 1e-7
	)
	src := rng.New(2024)
	w, g, err := multihop.RandomWorkload(nodes, geom.Square(800), radius, packets,
		alpha, noise, network.UniformPower{P: 2}, src)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("graph: %d nodes, radius %.0f, connected = %v\n", nodes, radius, g.Connected())
	fmt.Printf("workload: %d packets over %d distinct hop links\n\n", packets, w.Network.N())
	var hopCount stats.Running
	for k, route := range w.NodeRoutes {
		hopCount.Add(float64(len(route) - 1))
		if k < 4 {
			fmt.Printf("  packet %d: %d hops %v\n", k, len(route)-1, route)
		}
	}
	fmt.Printf("  ... average route length: %.1f hops\n\n", hopCount.Mean())

	m := w.Network.Gains()
	capFn := latency.GreedyCapacity(capacity.LengthOrder(w.Network), capacity.DefaultTau)
	paths := make([]latency.Path, len(w.Routes))
	for k, r := range w.Routes {
		paths[k] = r
	}

	slots, done := latency.MultiHop(m, beta, paths, capFn, 0, latency.NonFading{})
	fmt.Printf("non-fading delivery: %d slots (done=%v)\n", slots, done)

	var rl stats.Running
	for trial := 0; trial < 10; trial++ {
		s, ok := latency.MultiHop(m, beta, paths, capFn, 1000000, latency.Rayleigh{Src: src.Split()})
		if !ok {
			log.Fatal("rayleigh delivery incomplete")
		}
		rl.Add(float64(s))
	}
	fmt.Printf("rayleigh delivery:   %s slots over 10 trials\n", rl.Summarize())
	fmt.Println("\nfading stretches the schedule by a small factor, as the Section-4")
	fmt.Println("transformation predicts: each hop keeps a constant success probability.")
}
