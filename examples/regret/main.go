// Distributed capacity maximization by no-regret learning (paper Sections
// 6–7): every link runs Randomized Weighted Majority with the paper's loss
// structure; the example prints the per-round success trajectory in both
// interference models, the measured external regret, and the Lemma-5
// relation X ≤ F ≤ 2X + εn.
package main

import (
	"fmt"
	"log"

	"rayfade"
)

func main() {
	// The paper's Figure-2 workload: 200 links, lengths (0,100], α = 2.1,
	// ν = 0, uniform power 2, threshold β = 0.5.
	scn, err := rayfade.NewScenario(rayfade.Figure2Workload(), 0.5, 21)
	if err != nil {
		log.Fatal(err)
	}
	const rounds = 100

	nf := scn.RunRegretLearning(rounds, false)
	rl := scn.RunRegretLearning(rounds, true)

	fmt.Printf("round   non-fading   rayleigh\n")
	for _, t := range []int{0, 1, 2, 4, 9, 19, 39, 69, 99} {
		fmt.Printf("%5d %12d %10d\n", t+1, nf.Rounds[t].Successes, rl.Rounds[t].Successes)
	}

	fmt.Printf("\nconverged throughput (last 30 rounds): non-fading %.1f, rayleigh %.1f\n",
		nf.AverageSuccesses(30), rl.AverageSuccesses(30))
	fmt.Printf("greedy capacity reference:             %d links\n", len(scn.GreedyCapacity()))
	fmt.Printf("max average regret:                    non-fading %.3f, rayleigh %.3f\n",
		nf.MaxAverageRegret(), rl.MaxAverageRegret())

	for _, h := range []*rayfade.RegretHistory{nf, rl} {
		s := h.Lemma5()
		ok := s.X <= s.F && s.F <= 2*s.X+s.Epsilon*float64(h.N)+0.1*float64(h.N)
		fmt.Printf("lemma 5 (%s): X=%.1f  F=%.1f  ε=%.3f  holds=%v\n",
			h.Model, s.X, s.F, s.Epsilon, ok)
	}
}
