// Quickstart: build a random wireless network, schedule it in the
// non-fading SINR model, and transfer the solution to the Rayleigh-fading
// model with the paper's Lemma-2 guarantee.
package main

import (
	"fmt"
	"log"

	"rayfade"
)

func main() {
	// The paper's Figure-1 workload: 100 links on a 1000×1000 plane,
	// lengths 20–40, α = 2.2, ν = 4e-7, uniform power 2, threshold β = 2.5.
	scn, err := rayfade.NewScenario(rayfade.Figure1Workload(), 2.5, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d links, β = %.1f\n\n", scn.N(), scn.Beta())

	// 1. Solve capacity maximization in the non-fading model.
	set := scn.GreedyCapacity()
	fmt.Printf("greedy capacity (non-fading): %d simultaneous links, feasible = %v\n",
		len(set), scn.Feasible(set))

	// 2. Transfer the identical set to the Rayleigh model (Lemma 2):
	// at least a 1/e fraction of the value survives in expectation.
	rep := scn.TransferToRayleigh(set)
	fmt.Printf("lemma-2 guarantee: E[successes] ≥ %.2f\n", rep.GuaranteedValue)

	// 3. The exact expectation, from the closed form of Theorem 1.
	exact := scn.ExpectedRayleighSuccesses(set)
	fmt.Printf("exact expectation (Theorem 1): %.2f of %d\n", exact, len(set))

	// 4. One concrete fading realization.
	succ := scn.SampleRayleighSuccesses(set)
	fmt.Printf("one Rayleigh draw: %d of %d links succeeded\n\n", len(succ), len(set))

	// 5. Per-link success probabilities under probabilistic access,
	// sandwiched by the Lemma-1 bounds.
	q := scn.UniformProbs(0.5)
	i := set[0]
	p := scn.RayleighSuccessProbability(q, i)
	lo, hi := scn.RayleighSuccessBounds(q, i)
	fmt.Printf("link %d at q=0.5: Q_i = %.4f (bounds [%.4f, %.4f])\n", i, p, lo, hi)
}
