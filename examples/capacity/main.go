// Capacity maximization across power regimes: the example compares the
// algorithm families the paper's reduction transfers — uniform-power greedy,
// exact power control, a local-search optimum estimate — and the
// flexible-data-rate (Shannon) decomposition, reporting for each solution
// its non-fading value and its exact expected value under Rayleigh fading.
package main

import (
	"fmt"
	"log"

	"rayfade"
	"rayfade/internal/capacity"
	"rayfade/internal/fading"
	"rayfade/internal/utility"
)

func main() {
	const beta = 2.5
	scn, err := rayfade.NewScenario(rayfade.Figure1Workload(), beta, 7)
	if err != nil {
		log.Fatal(err)
	}
	net := scn.Network()

	fmt.Printf("%-26s %8s %22s\n", "algorithm", "set size", "E[rayleigh successes]")
	show := func(name string, set []int, ev float64) {
		fmt.Printf("%-26s %8d %22.2f\n", name, len(set), ev)
	}

	greedy := scn.GreedyCapacity()
	show("greedy (uniform power)", greedy, scn.ExpectedRayleighSuccesses(greedy))

	est := scn.OptimumEstimate()
	show("local-search optimum", est, scn.ExpectedRayleighSuccesses(est))

	pc := scn.PowerControlCapacity()
	pcNet := pc.ApplyPowers(net)
	show("power control", pc.Set, fading.ExpectedBinaryValueOfSet(pcNet.Gains(), pc.Set, beta))

	// Square-root power assignment (the second curve family of Figure 1).
	sqrtNet := net.Clone().ApplyPower(rayfade.SquareRootPower{Scale: 2, Alpha: net.Alpha})
	sqrtSet := capacity.GreedyMonotone(sqrtNet, beta)
	show("greedy (sqrt power)", sqrtSet, fading.ExpectedBinaryValueOfSet(sqrtNet.Gains(), sqrtSet, beta))

	// Flexible data rates: maximize total Shannon capacity by picking the
	// best SINR threshold class (Kesselheim's rate decomposition).
	best, classes := capacity.FlexibleRates(net, utility.Uniform(utility.Shannon{}), 0.25, 32)
	fmt.Printf("\nflexible rates (Shannon): best class β=%.2f, %d links, value %.2f nats\n",
		best.Beta, len(best.Set), best.Value)
	for _, c := range classes {
		fmt.Printf("  class β=%5.2f: %3d links, value %6.2f\n", c.Beta, len(c.Set), c.Value)
	}
}
