// The paper's reduction, end to end on one instance: Theorem 1's closed
// form against Monte Carlo, the Lemma-1 sandwich, the Lemma-2 transfer, and
// the Theorem-2 / Algorithm-1 simulation with its O(log* n) schedule —
// showing how the Rayleigh optimum is chased by a handful of non-fading
// probability levels.
package main

import (
	"fmt"
	"log"
	"math"

	"rayfade"
	"rayfade/internal/fading"
	"rayfade/internal/rng"
	"rayfade/internal/stats"
)

func main() {
	cfg := rayfade.Figure1Workload()
	cfg.N = 60
	scn, err := rayfade.NewScenario(cfg, 2.5, 33)
	if err != nil {
		log.Fatal(err)
	}
	m := scn.Network().Gains()
	src := rng.New(1234)

	// Theorem 1: closed form vs Monte Carlo for one link.
	q := scn.UniformProbs(0.6)
	link := 5
	exact := scn.RayleighSuccessProbability(q, link)
	mc := fading.SuccessProbabilityMC(m, q, 2.5, link, 100000, src)
	fmt.Printf("Theorem 1, link %d: closed form %.4f, Monte-Carlo %.4f ± %.4f\n",
		link, exact, mc.Mean, mc.StdErr)

	// Lemma 1: the sandwich across all links.
	worstGap := 0.0
	for i := 0; i < scn.N(); i++ {
		p := scn.RayleighSuccessProbability(q, i)
		lo, hi := scn.RayleighSuccessBounds(q, i)
		if lo > p || p > hi {
			log.Fatalf("Lemma 1 violated at link %d", i)
		}
		worstGap = math.Max(worstGap, hi-lo)
	}
	fmt.Printf("Lemma 1 holds for all %d links (widest bound gap %.4f)\n", scn.N(), worstGap)

	// Lemma 2: transfer a non-fading solution.
	set := scn.GreedyCapacity()
	rep := scn.TransferToRayleigh(set)
	fmt.Printf("Lemma 2: non-fading value %.0f → guaranteed %.2f, exact %.2f (retention %.0f%%)\n",
		rep.NonFadingValue, rep.GuaranteedValue, scn.ExpectedRayleighSuccesses(set),
		100*scn.ExpectedRayleighSuccesses(set)/rep.NonFadingValue)

	// Theorem 2 / Algorithm 1: simulate a Rayleigh probability assignment
	// with O(log* n) non-fading levels and take the best single step.
	qOpt := scn.UniformProbs(0.8)
	steps := scn.SimulationSchedule(qOpt)
	fmt.Printf("Algorithm 1: %d levels for n=%d (log* tower: %v...)\n",
		len(steps), scn.N(), firstK(stats.TowerSequence(scn.N()), 4))
	rayleighValue := fading.ExpectedSuccessesExact(m, qOpt, 2.5)
	best := scn.BestSimulationStep(qOpt, 300)
	fmt.Printf("Rayleigh expected value %.2f; best simulation step (level %d, b=%.3g) "+
		"achieves %.2f ± %.2f in the NON-fading model\n",
		rayleighValue, best.Step.Level, best.Step.B, best.Value.Mean, best.Value.StdErr)
	fmt.Printf("→ the non-fading optimum is within a constant × log*(n) of the Rayleigh optimum\n")
}

func firstK(xs []float64, k int) []float64 {
	if len(xs) < k {
		k = len(xs)
	}
	out := make([]float64, k)
	for i := range out {
		out[i] = math.Round(xs[i]*1000) / 1000
	}
	return out
}
