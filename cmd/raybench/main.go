// Command raybench is the repo's reproducible performance and determinism
// harness. It runs a curated suite of end-to-end benchmark scenarios over
// the hot paths (fading sample kernels, SINR aggregation, one-shot capacity
// scheduling, latency minimization, the Lemma-2 transform, sim.ParallelCtx
// scaling, and rayschedd request throughput), writes the measurements to a
// schema-versioned BENCH_<label>.json, compares two such reports with a
// noise threshold, and maintains the golden-determinism manifest of every
// sim experiment's fixed-seed output.
//
// Subcommands:
//
//	run      measure the scenario suite and write BENCH_<label>.json
//	compare  diff two BENCH files; exits 1 on regressions beyond the threshold
//	golden   recompute fixed-seed experiment hashes; -check verifies results/golden.json
//	version  print the release version
//
// Typical workflows:
//
//	raybench run -quick -label pr                      # PR smoke measurement
//	raybench compare BENCH_seed.json BENCH_pr.json -threshold 0.40
//	raybench golden -check                             # determinism gate
//	raybench golden -out results/golden.json           # regenerate after an intentional change
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	"rayfade/internal/benchio"
	"rayfade/internal/faults"
	"rayfade/internal/obs"
	"rayfade/internal/version"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var err error
	switch os.Args[1] {
	case "run":
		err = cmdRun(ctx, os.Args[2:])
	case "scaling":
		err = cmdScaling(ctx, os.Args[2:])
	case "throughput":
		err = cmdThroughput(ctx, os.Args[2:])
	case "compare":
		err = cmdCompare(os.Args[2:])
	case "golden":
		err = cmdGolden(ctx, os.Args[2:])
	case "tracecheck":
		err = cmdTraceCheck(os.Args[2:])
	case "version", "-version", "--version":
		fmt.Printf("raybench %s\n", version.Version)
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "raybench: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "raybench: interrupted")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "raybench:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: raybench <subcommand> [flags]

subcommands:
  run         measure the benchmark suite and write BENCH_<label>.json
  scaling     measure the worker-scaling scenarios and gate on the speedup
  throughput  measure batch vs per-request estimate throughput and gate on the ratio
  compare     compare two BENCH files; exit 1 on regressions beyond the threshold
  golden      hash fixed-seed experiment outputs; -check verifies the manifest
  tracecheck  validate Chrome trace-event JSON files (-nested requires span nesting)
  version     print the release version
  help        print this message

run 'raybench <subcommand> -h' for flags; unknown subcommands exit 2`)
}

// gitSHA best-effort resolves the current revision; a non-repo checkout or
// missing git binary degrades to an empty field, never an error.
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

func cmdRun(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	quick := fs.Bool("quick", false, "smoke settings: quick scenario subset, fewer reps, shorter reps")
	label := fs.String("label", "local", "report label (file name defaults to BENCH_<label>.json)")
	out := fs.String("out", "", "output path (default BENCH_<label>.json)")
	reps := fs.Int("reps", 0, "timed repetitions per scenario (0 = mode default)")
	warmup := fs.Int("warmup", 0, "warmup iterations per scenario (0 = mode default)")
	minTime := fs.Duration("mintime", 0, "per-rep wall-time target (0 = mode default)")
	filter := fs.String("filter", "", "only run scenarios whose name contains this substring")
	list := fs.Bool("list", false, "list scenario names and exit")
	traceDir := fs.String("trace-dir", "", "after each scenario, run a traced pass and write one Chrome trace here")
	faultSpec := fs.String("faults", "", `inject deterministic faults during the run, e.g. "seed=1,pool.job=error:0.05"`)
	forceScaling := fs.Bool("force-scaling", false, "record worker-scaling scenarios even when the width exceeds this machine's CPU count")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			return err
		}
	}
	if *faultSpec != "" {
		inj, err := faults.Parse(*faultSpec)
		if err != nil {
			return err
		}
		faults.SetDefault(inj)
		defer faults.SetDefault(nil)
		fmt.Fprintf(os.Stderr, "raybench: fault injection armed: %s\n", *faultSpec)
	}
	suite := scenarios()
	if *list {
		for _, sc := range suite {
			mode := "full"
			if sc.quick {
				mode = "quick"
			}
			fmt.Printf("%-44s %s\n", sc.name, mode)
		}
		return nil
	}
	opts := benchio.Options{}
	if *quick {
		opts = benchio.Quick()
	}
	if *reps > 0 {
		opts.Reps = *reps
	}
	if *warmup > 0 {
		opts.WarmupIters = *warmup
	}
	if *minTime > 0 {
		opts.MinTime = *minTime
	}
	report := &benchio.Report{
		Label:    *label,
		UnixTime: time.Now().Unix(),
		Env:      benchio.CaptureEnv(gitSHA()),
	}
	for _, sc := range suite {
		if err := ctx.Err(); err != nil {
			return err
		}
		if *quick && !sc.quick {
			continue
		}
		if *filter != "" && !strings.Contains(sc.name, *filter) {
			continue
		}
		// A scaling scenario wider than the machine would record an
		// oversubscribed (and therefore meaningless) number — the corruption
		// that poisoned the original seed baseline. Refuse unless forced.
		if w := benchio.ScalingWidth(sc.name); w > runtime.NumCPU() && !*forceScaling {
			fmt.Fprintf(os.Stderr, "raybench: skipping %s: width %d exceeds %d CPUs (-force-scaling records it anyway)\n",
				sc.name, w, runtime.NumCPU())
			continue
		}
		op, cleanup, err := sc.setup()
		if err != nil {
			return fmt.Errorf("setup %s: %w", sc.name, err)
		}
		start := time.Now()
		s := benchio.Measure(sc.name, opts, op)
		if sc.units > 1 {
			s.UnitsPerOp = float64(sc.units)
		}
		cleanup()
		if *traceDir != "" {
			s, err = tracePass(sc, s, *traceDir)
			if err != nil {
				return fmt.Errorf("trace %s: %w", sc.name, err)
			}
		}
		report.Scenarios = append(report.Scenarios, s)
		fmt.Fprintf(os.Stderr, "%-44s %12.0f ns/op %10.1f allocs/op %10.0f ops/s  (%s)\n",
			sc.name, s.NsPerOp, s.AllocsPerOp, s.OpsPerSec, time.Since(start).Round(time.Millisecond))
	}
	if len(report.Scenarios) == 0 {
		return fmt.Errorf("no scenarios matched (filter %q, quick=%v)", *filter, *quick)
	}
	path := *out
	if path == "" {
		path = "BENCH_" + *label + ".json"
	}
	if err := benchio.WriteReport(path, report); err != nil {
		return err
	}
	fmt.Printf("wrote %d scenarios to %s\n", len(report.Scenarios), path)
	return nil
}

// cmdScaling measures the worker-scaling scenarios at every width the
// machine can honestly provide and gates on the speedup of the widest
// feasible width over workers=1. Unlike compare it needs no baseline file:
// scaling is a property of one machine at one revision, so it is measured
// and judged in a single run. On machines with too few CPUs for any
// multi-worker width the gate degrades to a notice and success — a laptop
// must not fail CI's job locally.
func cmdScaling(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("scaling", flag.ExitOnError)
	minSpeedup := fs.Float64("min-speedup", 2.0, "required speedup of the widest feasible width over workers=1")
	reps := fs.Int("reps", 3, "timed repetitions per width")
	minTime := fs.Duration("mintime", 25*time.Millisecond, "per-rep wall-time target")
	if err := fs.Parse(args); err != nil {
		return err
	}
	procs := runtime.GOMAXPROCS(0)
	if n := runtime.NumCPU(); n < procs {
		procs = n
	}
	type point struct {
		width int
		ns    float64
	}
	var points []point
	for _, sc := range scenarios() {
		w := benchio.ScalingWidth(sc.name)
		if w == 0 {
			continue
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		if w > procs {
			fmt.Fprintf(os.Stderr, "raybench: scaling: skipping %s (%d CPUs usable)\n", sc.name, procs)
			continue
		}
		op, cleanup, err := sc.setup()
		if err != nil {
			return fmt.Errorf("setup %s: %w", sc.name, err)
		}
		s := benchio.Measure(sc.name, benchio.Options{WarmupIters: 1, Reps: *reps, MinTime: *minTime}, op)
		cleanup()
		fmt.Fprintf(os.Stderr, "%-44s %12.0f ns/op\n", sc.name, s.NsPerOp)
		points = append(points, point{w, s.NsPerOp})
	}
	if len(points) < 2 {
		fmt.Printf("scaling: only %d feasible width(s) on a %d-CPU machine; nothing to gate\n", len(points), procs)
		return nil
	}
	base, widest := points[0], points[0]
	for _, p := range points[1:] {
		if p.width < base.width {
			base = p
		}
		if p.width > widest.width {
			widest = p
		}
	}
	if widest.ns <= 0 || base.ns <= 0 {
		return fmt.Errorf("scaling: non-positive measurement (workers=%d: %g ns/op, workers=%d: %g ns/op)",
			base.width, base.ns, widest.width, widest.ns)
	}
	speedup := base.ns / widest.ns
	fmt.Printf("scaling: workers=%d is %.2fx workers=%d (gate: ≥%.2fx)\n",
		widest.width, speedup, base.width, *minSpeedup)
	if speedup < *minSpeedup {
		return fmt.Errorf("scaling gate failed: workers=%d only %.2fx over workers=%d, want ≥%.2fx",
			widest.width, speedup, base.width, *minSpeedup)
	}
	return nil
}

// cmdThroughput measures the batched estimate path against the per-request
// path and gates on the estimates/sec ratio. Like cmdScaling it needs no
// baseline file: both sides are measured in the same process on the same
// machine moments apart, so the ratio is self-relative and machine-
// independent — a laptop and a CI runner gate on the same number even
// though their absolute throughputs differ by an order of magnitude.
//
// Both scenarios run cache-hot (the per-request baseline is
// server/estimate-cache-hit, the best case the single-request framing can
// offer), so the ratio isolates what batching actually removes: per-request
// HTTP round trips, connection handling, and envelope work. Gating the
// batch against the per-request path's *best* case keeps the gate honest —
// beating a cache-missing baseline would be trivial.
func cmdThroughput(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("throughput", flag.ExitOnError)
	minRatio := fs.Float64("min-ratio", 5.0, "required batched-over-per-request estimates/sec ratio")
	reps := fs.Int("reps", 3, "timed repetitions per scenario")
	minTime := fs.Duration("mintime", 25*time.Millisecond, "per-rep wall-time target")
	if err := fs.Parse(args); err != nil {
		return err
	}
	const (
		baseName  = "server/estimate-cache-hit"
		batchName = "server/batch-throughput"
	)
	rates := map[string]float64{}
	for _, sc := range scenarios() {
		if sc.name != baseName && sc.name != batchName {
			continue
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		op, cleanup, err := sc.setup()
		if err != nil {
			return fmt.Errorf("setup %s: %w", sc.name, err)
		}
		s := benchio.Measure(sc.name, benchio.Options{WarmupIters: 1, Reps: *reps, MinTime: *minTime}, op)
		cleanup()
		units := float64(sc.units)
		if units < 1 {
			units = 1
		}
		rates[sc.name] = s.OpsPerSec * units
		fmt.Fprintf(os.Stderr, "%-44s %12.0f ns/op %10.0f estimates/s\n", sc.name, s.NsPerOp, rates[sc.name])
	}
	base, batch := rates[baseName], rates[batchName]
	if base <= 0 || batch <= 0 {
		return fmt.Errorf("throughput: non-positive measurement (%s: %g/s, %s: %g/s)",
			baseName, base, batchName, batch)
	}
	ratio := batch / base
	fmt.Printf("throughput: batch serves %.2fx the per-request estimates/sec (gate: ≥%.2fx)\n", ratio, *minRatio)
	if ratio < *minRatio {
		return fmt.Errorf("throughput gate failed: batch only %.2fx the per-request path, want ≥%.2fx", ratio, *minRatio)
	}
	return nil
}

// tracePass re-runs one scenario with the process-default tracer installed,
// writes the captured spans as a Chrome trace into dir, and fills the
// report's span-count and overhead fields. It rebuilds the scenario from
// setup so the traced pass sees the same steady state the measurement saw.
func tracePass(sc scenario, s benchio.Scenario, dir string) (benchio.Scenario, error) {
	op, cleanup, err := sc.setup()
	if err != nil {
		return s, err
	}
	defer cleanup()
	iters := s.Iters
	if iters > 64 {
		iters = 64 // the overhead estimate converges quickly; don't re-run a long suite
	}
	if iters < 1 {
		iters = 1
	}
	tr := obs.NewTracer(1 << 16)
	obs.SetDefault(tr)
	defer obs.SetDefault(nil)
	op() // warmup: pools and caches refill before the timed window
	warmupSpans := tr.Recorded()
	start := time.Now()
	for i := 0; i < iters; i++ {
		op()
	}
	elapsed := time.Since(start)
	if err := tr.WriteTraceFile(filepath.Join(dir, traceFileName(sc.name))); err != nil {
		return s, err
	}
	s.TraceSpansPerOp = float64(tr.Recorded()-warmupSpans) / float64(iters)
	tracedNs := float64(elapsed.Nanoseconds()) / float64(iters)
	if over := tracedNs - s.NsPerOp; over > 0 {
		s.TraceOverheadNsPerOp = over
	}
	return s, nil
}

// traceFileName maps a scenario name onto a flat file name.
func traceFileName(name string) string {
	r := strings.NewReplacer("/", "_", "=", "-", " ", "_")
	return r.Replace(name) + ".trace.json"
}

func cmdTraceCheck(args []string) error {
	fs := flag.NewFlagSet("tracecheck", flag.ExitOnError)
	nested := fs.Bool("nested", false, "additionally require at least one nested span pair")
	minProcs := fs.Int("min-procs", 0, "require at least this many distinct pids (a merged cluster trace has the coordinator plus every contributing worker)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("tracecheck wants one or more trace files")
	}
	for _, path := range fs.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		stats, err := obs.ValidateTrace(data)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if *nested && !stats.Nested {
			return fmt.Errorf("%s: valid but contains no nested spans", path)
		}
		if stats.Procs < *minProcs {
			return fmt.Errorf("%s: valid but spans come from %d process(es), want ≥ %d — worker traces did not merge",
				path, stats.Procs, *minProcs)
		}
		fmt.Printf("%s: %d events on %d tracks across %d processes (nested=%v)\n",
			path, stats.Events, stats.Tracks, stats.Procs, stats.Nested)
	}
	return nil
}

func cmdCompare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	threshold := fs.Float64("threshold", 0.10, "relative noise threshold (0.40 = ±40%)")
	metric := fs.String("metric", "time", "metric to gate on: time (ns/op) or allocs (allocs/op)")
	// Accept flags before or after the positional paths: flag.Parse stops
	// at the first non-flag, so collect positionals and re-parse the rest.
	var paths []string
	rest := args
	for {
		if err := fs.Parse(rest); err != nil {
			return err
		}
		if fs.NArg() == 0 {
			break
		}
		paths = append(paths, fs.Arg(0))
		rest = fs.Args()[1:]
	}
	if len(paths) != 2 {
		return fmt.Errorf("compare wants exactly two report paths, got %d", len(paths))
	}
	var m benchio.Metric
	switch *metric {
	case "time":
		m = benchio.MetricTime
	case "allocs":
		m = benchio.MetricAllocs
	default:
		return fmt.Errorf("unknown metric %q (want time or allocs)", *metric)
	}
	oldRep, err := benchio.ReadReport(paths[0])
	if err != nil {
		return err
	}
	newRep, err := benchio.ReadReport(paths[1])
	if err != nil {
		return err
	}
	if m == benchio.MetricTime && oldRep.Env.CPUModel != newRep.Env.CPUModel {
		fmt.Fprintf(os.Stderr, "warning: comparing times across CPU models (%q vs %q) — deltas reflect hardware, not code\n",
			oldRep.Env.CPUModel, newRep.Env.CPUModel)
	}
	res := benchio.Compare(oldRep, newRep, m, *threshold)
	if err := res.WriteText(os.Stdout); err != nil {
		return err
	}
	// Traced runs carry per-scenario span overhead; surface it (from either
	// side) so the cost of instrumentation is reviewed alongside the deltas.
	for _, rep := range []*benchio.Report{oldRep, newRep} {
		if err := benchio.WriteTraceOverhead(os.Stdout, rep); err != nil {
			return err
		}
	}
	if res.Failed() {
		// Name only the failure causes that actually occurred: "0 missing
		// scenario(s)" next to real regressions (or vice versa) reads as if
		// both gates tripped.
		var causes []string
		if n := len(res.Regressions()); n > 0 {
			causes = append(causes, fmt.Sprintf("%d regression(s) beyond ±%.0f%%", n, *threshold*100))
		}
		if n := len(res.Missing); n > 0 {
			causes = append(causes, fmt.Sprintf("%d scenario(s) missing from the new report", n))
		}
		return errors.New(strings.Join(causes, " and "))
	}
	fmt.Printf("no regressions beyond ±%.0f%% (%s)", *threshold*100, *metric)
	if n := len(res.Added); n > 0 {
		// New scenarios have no baseline to gate against; say so explicitly
		// so their listing above is not mistaken for a problem.
		fmt.Printf("; %d new scenario(s) without a baseline, not gated", n)
	}
	fmt.Println()
	return nil
}

func cmdGolden(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("golden", flag.ExitOnError)
	path := fs.String("path", "results/golden.json", "manifest path")
	check := fs.Bool("check", false, "verify against the recorded manifest instead of writing")
	out := fs.String("out", "", "write the recomputed manifest here (default: -path)")
	withTrace := fs.Bool("trace", false, "recompute with tracing enabled (the hashes must not move — instrumentation cannot perturb outputs)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *withTrace {
		obs.SetDefault(obs.NewTracer(1 << 16))
		defer obs.SetDefault(nil)
	}
	computed, err := computeGolden(ctx)
	if err != nil {
		return err
	}
	if *check {
		recorded, err := benchio.ReadGolden(*path)
		if err != nil {
			return err
		}
		diff := benchio.DiffGolden(recorded, computed)
		if diff.Clean() {
			fmt.Printf("golden: %d experiments byte-identical to %s\n", len(recorded.Entries), *path)
			return nil
		}
		for _, name := range diff.Mismatched {
			fmt.Printf("MISMATCH %-12s recorded %s != computed %s\n",
				name, short(recorded.Entries[name].SHA256), short(computed.Entries[name].SHA256))
		}
		for _, name := range diff.Missing {
			fmt.Printf("MISSING  %-12s recorded but no longer computed\n", name)
		}
		for _, name := range diff.Extra {
			fmt.Printf("EXTRA    %-12s computed but not recorded (regenerate the manifest)\n", name)
		}
		return fmt.Errorf("golden manifest drift: %d mismatched, %d missing, %d extra (regenerate with 'raybench golden' if intentional)",
			len(diff.Mismatched), len(diff.Missing), len(diff.Extra))
	}
	dest := *out
	if dest == "" {
		dest = *path
	}
	if err := benchio.WriteGolden(dest, computed); err != nil {
		return err
	}
	fmt.Printf("wrote %d experiment hashes to %s\n", len(computed.Entries), dest)
	return nil
}

func short(hash string) string {
	if len(hash) > 12 {
		return hash[:12]
	}
	return hash
}
