package main

// The scenario suite: each scenario isolates one hot path the ROADMAP's
// perf work targets, end to end. Setup (network generation, schedule
// construction, server start) happens outside the measured operation; the
// op closure is the steady-state work a production deployment repeats.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"time"

	"rayfade/internal/capacity"
	"rayfade/internal/client"
	"rayfade/internal/fading"
	"rayfade/internal/faults"
	"rayfade/internal/latency"
	"rayfade/internal/network"
	"rayfade/internal/rng"
	"rayfade/internal/server"
	"rayfade/internal/sim"
	"rayfade/internal/sinr"
	"rayfade/internal/stats"
	"rayfade/internal/transform"
	"rayfade/internal/utility"
)

// scenario is one named measurement. quick scenarios form the PR smoke
// subset; the full suite adds the heavier end-to-end runs.
type scenario struct {
	name  string
	quick bool
	// setup builds the op under test and a cleanup (never nil). Errors
	// abort the whole run — a half-measured suite is worse than none.
	setup func() (op func(), cleanup func(), err error)
}

func noCleanup() {}

// benchNetwork draws the deterministic Figure-1-style instance scenarios
// share (same generator as bench_test.go's benchMatrix).
func benchNetwork(links int, seed uint64) (*network.Network, error) {
	cfg := network.Figure1Config()
	cfg.N = links
	return network.Random(cfg, rng.New(seed))
}

// scenarios returns the suite in execution order. Names are stable
// identifiers — compare keys reports by them, so renaming one orphans its
// baseline.
func scenarios() []scenario {
	list := []scenario{
		{name: "fading/sample-dense-200", quick: true, setup: func() (func(), func(), error) {
			return sampleSINRsOp(200, 23, func(active []bool) {
				for i := range active {
					active[i] = true
				}
			})
		}},
		{name: "fading/sample-sparse-200", quick: true, setup: func() (func(), func(), error) {
			return sampleSINRsOp(200, 24, func(active []bool) {
				for i := 0; i < len(active); i += 10 {
					active[i] = true
				}
			})
		}},
		{name: "sinr/values-dense-200", quick: true, setup: func() (func(), func(), error) {
			net, err := benchNetwork(200, 23)
			if err != nil {
				return nil, nil, err
			}
			m := net.Gains()
			active := make([]bool, m.N)
			for i := range active {
				active[i] = true
			}
			vals := make([]float64, m.N)
			return func() { sinr.ValuesInto(m, active, vals) }, noCleanup, nil
		}},
		{name: "fading/expected-successes-100", quick: true, setup: func() (func(), func(), error) {
			net, err := benchNetwork(100, 1)
			if err != nil {
				return nil, nil, err
			}
			m := net.Gains()
			q := fading.UniformProbs(m.N, 0.5)
			return func() { fading.ExpectedSuccessesExact(m, q, 2.5) }, noCleanup, nil
		}},
		{name: "capacity/greedy-oneshot-100", quick: true, setup: func() (func(), func(), error) {
			net, err := benchNetwork(100, 4)
			if err != nil {
				return nil, nil, err
			}
			m := net.Gains()
			order := capacity.LengthOrder(net)
			return func() { capacity.GreedyAffectance(m, 2.5, capacity.DefaultTau, order) }, noCleanup, nil
		}},
		{name: "latency/repeated-capacity-100", quick: true, setup: func() (func(), func(), error) {
			net, err := benchNetwork(100, 7)
			if err != nil {
				return nil, nil, err
			}
			m := net.Gains()
			capFn := latency.GreedyCapacity(capacity.LengthOrder(net), capacity.DefaultTau)
			return func() {
				if _, err := latency.RepeatedCapacity(m, 2.5, capFn); err != nil {
					panic(fmt.Sprintf("raybench: latency scenario: %v", err))
				}
			}, noCleanup, nil
		}},
		{name: "transform/lemma2-transfer-100", quick: true, setup: func() (func(), func(), error) {
			net, err := benchNetwork(100, 4)
			if err != nil {
				return nil, nil, err
			}
			m := net.Gains()
			set := capacity.GreedyUniform(net, 2.5)
			us := utility.Uniform(utility.Binary{Beta: 2.5})
			return func() { transform.Transfer(m, set, us) }, noCleanup, nil
		}},
	}
	for _, workers := range []int{1, 4, 8} {
		w := workers
		list = append(list, scenario{
			name:  fmt.Sprintf("sim/figure1-small/workers=%d", w),
			quick: true,
			setup: func() (func(), func(), error) {
				cfg := sim.Figure1Config{
					Networks:      8,
					Links:         40,
					TransmitSeeds: 2,
					FadingSeeds:   2,
					Probs:         stats.Linspace(0.2, 1.0, 3),
					Seed:          19,
					Workers:       w,
				}
				return func() { sim.RunFigure1(cfg) }, noCleanup, nil
			},
		})
	}
	list = append(list,
		scenario{name: "server/estimate-compute", quick: true, setup: func() (func(), func(), error) {
			// Caching disabled and a fresh seed per request: every request
			// exercises admission, compute, and marshaling.
			return serverOp(server.Config{CacheSize: -1}, func(counter *atomic.Uint64) ([]byte, error) {
				topo, err := server.BenchTopology(40, 1)
				if err != nil {
					return nil, err
				}
				return server.BenchEstimateRequest(topo, 100, counter.Add(1))
			}, true)
		}},
		scenario{name: "server/estimate-cache-hit", quick: true, setup: func() (func(), func(), error) {
			// One fixed body: after the first request everything replays
			// from the LRU — the daemon's best-case request throughput.
			return serverOp(server.Config{}, func(*atomic.Uint64) ([]byte, error) {
				topo, err := server.BenchTopology(40, 1)
				if err != nil {
					return nil, err
				}
				return server.BenchEstimateRequest(topo, 100, 1)
			}, false)
		}},
		scenario{name: "server/goodput-under-faults", quick: false, setup: goodputUnderFaultsOp},
	)
	return list
}

// goodputUnderFaultsOp measures end-to-end goodput against a flaky daemon:
// the injector makes a fifth of requests fail transiently at admission and
// the occasional pool job error out, both surfacing as 503 + Retry-After,
// and the retrying client must still land every request. One op = one
// request completed despite the weather; the ns/op delta against
// server/estimate-compute is the price of the fault rate plus the retry
// machinery. (Panic faults are deliberately absent: a recovered panic is a
// terminal 500, which a correct client does not retry.)
func goodputUnderFaultsOp() (func(), func(), error) {
	inj, err := faults.Parse("seed=11,server.handler=error:0.2,pool.job=error:0.05")
	if err != nil {
		return nil, nil, err
	}
	prev := faults.Default()
	faults.SetDefault(inj)
	srv := server.New(server.Config{CacheSize: -1})
	ts := httptest.NewServer(srv)
	cleanup := func() {
		ts.Close()
		srv.Close()
		faults.SetDefault(prev)
	}
	c := client.New(client.Config{
		BaseURL:     ts.URL,
		HTTPClient:  ts.Client(),
		MaxAttempts: 10,
		BaseDelay:   time.Millisecond,
		MaxDelay:    20 * time.Millisecond,
		JitterSeed:  3,
	})
	var counter atomic.Uint64
	op := func() {
		topo, err := server.BenchTopology(40, 1)
		if err != nil {
			panic(fmt.Sprintf("raybench: goodput scenario topology: %v", err))
		}
		body, err := server.BenchEstimateRequest(topo, 100, counter.Add(1))
		if err != nil {
			panic(fmt.Sprintf("raybench: goodput scenario body: %v", err))
		}
		out, status, err := c.PostJSON(context.Background(), "/v1/estimate", body)
		if err != nil {
			panic(fmt.Sprintf("raybench: goodput scenario: %v", err))
		}
		if status != http.StatusOK {
			panic(fmt.Sprintf("raybench: goodput scenario: terminal status %d: %s", status, out))
		}
	}
	return op, cleanup, nil
}

// sampleSINRsOp builds the allocation-free Rayleigh sampling op over a
// links-sized instance with the given activation pattern.
func sampleSINRsOp(links int, seed uint64, fill func(active []bool)) (func(), func(), error) {
	net, err := benchNetwork(links, seed)
	if err != nil {
		return nil, nil, err
	}
	m := net.Gains()
	active := make([]bool, m.N)
	fill(active)
	vals := make([]float64, m.N)
	idx := make([]int, 0, m.N)
	src := rng.New(25)
	return func() { fading.SampleSINRsInto(m, active, src, vals, idx) }, noCleanup, nil
}

// serverOp starts an httptest rayschedd and returns an op that posts one
// /v1/estimate request and drains the response. When perRequest is true the
// body builder runs per call (fresh seed → cache miss); otherwise the body
// is built once and reused (cache hit after the first call).
func serverOp(cfg server.Config, body func(*atomic.Uint64) ([]byte, error), perRequest bool) (func(), func(), error) {
	srv := server.New(cfg)
	ts := httptest.NewServer(srv)
	cleanup := func() {
		ts.Close()
		srv.Close()
	}
	var counter atomic.Uint64
	var fixed []byte
	if !perRequest {
		b, err := body(&counter)
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		fixed = b
	}
	client := ts.Client()
	op := func() {
		payload := fixed
		if perRequest {
			b, err := body(&counter)
			if err != nil {
				panic(fmt.Sprintf("raybench: server scenario body: %v", err))
			}
			payload = b
		}
		resp, err := client.Post(ts.URL+"/v1/estimate", "application/json", bytes.NewReader(payload))
		if err != nil {
			panic(fmt.Sprintf("raybench: server scenario: %v", err))
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			panic(fmt.Sprintf("raybench: server scenario: status %d", resp.StatusCode))
		}
	}
	return op, cleanup, nil
}
