package main

// The scenario suite: each scenario isolates one hot path the ROADMAP's
// perf work targets, end to end. Setup (network generation, schedule
// construction, server start) happens outside the measured operation; the
// op closure is the steady-state work a production deployment repeats.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"time"

	"rayfade/internal/capacity"
	"rayfade/internal/client"
	"rayfade/internal/fading"
	"rayfade/internal/faults"
	"rayfade/internal/latency"
	"rayfade/internal/network"
	"rayfade/internal/obs"
	"rayfade/internal/rng"
	"rayfade/internal/server"
	"rayfade/internal/sim"
	"rayfade/internal/sinr"
	"rayfade/internal/stats"
	"rayfade/internal/transform"
	"rayfade/internal/utility"
)

// scenario is one named measurement. quick scenarios form the PR smoke
// subset; the full suite adds the heavier end-to-end runs.
type scenario struct {
	name  string
	quick bool
	// units is how many logical units of work one op covers (batch lines,
	// fan width); 0 means 1. Recorded as the report's UnitsPerOp so
	// throughput gates can compare units/sec across differently-framed
	// scenarios.
	units int
	// setup builds the op under test and a cleanup (never nil). Errors
	// abort the whole run — a half-measured suite is worse than none.
	setup func() (op func(), cleanup func(), err error)
}

func noCleanup() {}

// benchNetwork draws the deterministic Figure-1-style instance scenarios
// share (same generator as bench_test.go's benchMatrix).
func benchNetwork(links int, seed uint64) (*network.Network, error) {
	cfg := network.Figure1Config()
	cfg.N = links
	return network.Random(cfg, rng.New(seed))
}

// scenarios returns the suite in execution order. Names are stable
// identifiers — compare keys reports by them, so renaming one orphans its
// baseline.
func scenarios() []scenario {
	list := []scenario{
		{name: "fading/sample-dense-200", quick: true, setup: func() (func(), func(), error) {
			return sampleSINRsOp(200, 23, func(active []bool) {
				for i := range active {
					active[i] = true
				}
			})
		}},
		{name: "fading/sample-sparse-200", quick: true, setup: func() (func(), func(), error) {
			return sampleSINRsOp(200, 24, func(active []bool) {
				for i := 0; i < len(active); i += 10 {
					active[i] = true
				}
			})
		}},
		{name: "sinr/values-dense-200", quick: true, setup: func() (func(), func(), error) {
			net, err := benchNetwork(200, 23)
			if err != nil {
				return nil, nil, err
			}
			m := net.Gains()
			active := make([]bool, m.N)
			for i := range active {
				active[i] = true
			}
			vals := make([]float64, m.N)
			return func() { sinr.ValuesInto(m, active, vals) }, noCleanup, nil
		}},
		{name: "fading/expected-successes-100", quick: true, setup: func() (func(), func(), error) {
			net, err := benchNetwork(100, 1)
			if err != nil {
				return nil, nil, err
			}
			m := net.Gains()
			q := fading.UniformProbs(m.N, 0.5)
			return func() { fading.ExpectedSuccessesExact(m, q, 2.5) }, noCleanup, nil
		}},
		{name: "capacity/greedy-oneshot-100", quick: true, setup: func() (func(), func(), error) {
			net, err := benchNetwork(100, 4)
			if err != nil {
				return nil, nil, err
			}
			m := net.Gains()
			order := capacity.LengthOrder(net)
			return func() { capacity.GreedyAffectance(m, 2.5, capacity.DefaultTau, order) }, noCleanup, nil
		}},
		{name: "latency/repeated-capacity-100", quick: true, setup: func() (func(), func(), error) {
			net, err := benchNetwork(100, 7)
			if err != nil {
				return nil, nil, err
			}
			m := net.Gains()
			capFn := latency.GreedyCapacity(capacity.LengthOrder(net), capacity.DefaultTau)
			return func() {
				if _, err := latency.RepeatedCapacity(m, 2.5, capFn); err != nil {
					panic(fmt.Sprintf("raybench: latency scenario: %v", err))
				}
			}, noCleanup, nil
		}},
		{name: "transform/lemma2-transfer-100", quick: true, setup: func() (func(), func(), error) {
			net, err := benchNetwork(100, 4)
			if err != nil {
				return nil, nil, err
			}
			m := net.Gains()
			set := capacity.GreedyUniform(net, 2.5)
			us := utility.Uniform(utility.Binary{Beta: 2.5})
			return func() { transform.Transfer(m, set, us) }, noCleanup, nil
		}},
	}
	for _, workers := range []int{1, 4, 8} {
		w := workers
		list = append(list, scenario{
			name:  fmt.Sprintf("sim/figure1-small/workers=%d", w),
			quick: true,
			setup: func() (func(), func(), error) {
				cfg := sim.Figure1Config{
					Networks:      8,
					Links:         40,
					TransmitSeeds: 2,
					FadingSeeds:   2,
					Probs:         stats.Linspace(0.2, 1.0, 3),
					Seed:          19,
					Workers:       w,
				}
				return func() { sim.RunFigure1(cfg) }, noCleanup, nil
			},
		})
	}
	list = append(list,
		scenario{name: "server/estimate-compute", quick: true, setup: func() (func(), func(), error) {
			// Caching disabled and a fresh seed per request: every request
			// exercises admission, compute, and marshaling.
			return serverOp(server.Config{CacheSize: -1}, func(counter *atomic.Uint64) ([]byte, error) {
				topo, err := server.BenchTopology(40, 1)
				if err != nil {
					return nil, err
				}
				return server.BenchEstimateRequest(topo, 100, counter.Add(1))
			}, true)
		}},
		scenario{name: "server/estimate-cache-hit", quick: true, setup: func() (func(), func(), error) {
			// One fixed body: after the first request everything replays
			// from the LRU — the daemon's best-case request throughput.
			return serverOp(server.Config{}, func(*atomic.Uint64) ([]byte, error) {
				topo, err := server.BenchTopology(40, 1)
				if err != nil {
					return nil, err
				}
				return server.BenchEstimateRequest(topo, 100, 1)
			}, false)
		}},
		scenario{name: "server/session-hit", quick: true, setup: func() (func(), func(), error) {
			// The same cache-hit steady state as estimate-cache-hit, but the
			// topology rides as a session ref: the delta between the two
			// scenarios is the per-request cost of inline parse + re-canonicalize
			// that POST /v1/topology amortizes away.
			return sessionServerOp(server.Config{}, func(ref string) ([]byte, error) {
				return server.BenchEstimateRefRequest(ref, 100, 1)
			})
		}},
		scenario{name: "server/cluster-trace-overhead", quick: true, setup: clusterTraceOverheadOp},
		scenario{name: "server/singleflight", quick: true, units: singleflightFan, setup: singleflightOp},
		scenario{name: "server/batch-throughput", quick: true, units: batchLines, setup: batchThroughputOp},
		scenario{name: "server/goodput-under-faults", quick: false, setup: goodputUnderFaultsOp},
	)
	return list
}

const (
	// singleflightFan is the burst width of server/singleflight: identical
	// concurrent requests per op, of which one computes and the rest share.
	singleflightFan = 8
	// batchLines is the request count of one server/batch-throughput op.
	// Kept well under the scenario's cache size so a steady-state batch is
	// all cache hits (the framing cost is what the scenario isolates).
	batchLines = 256
)

// startBenchServer boots an httptest rayschedd and registers the standard
// 40-link bench topology as a session, returning the base URL, the session
// ref, and a cleanup.
func startBenchServer(cfg server.Config) (ts *httptest.Server, ref string, cleanup func(), err error) {
	srv := server.New(cfg)
	ts = httptest.NewServer(srv)
	cleanup = func() {
		ts.Close()
		srv.Close()
	}
	topo, err := server.BenchTopology(40, 1)
	if err != nil {
		cleanup()
		return nil, "", nil, err
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/topology", "application/json", bytes.NewReader(topo))
	if err != nil {
		cleanup()
		return nil, "", nil, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		cleanup()
		return nil, "", nil, fmt.Errorf("upload bench topology: status %d", resp.StatusCode)
	}
	return ts, server.TopologyRef(topo), cleanup, nil
}

// sessionServerOp starts a rayschedd with the bench topology registered and
// returns an op posting one fixed session-ref /v1/estimate request.
func sessionServerOp(cfg server.Config, body func(ref string) ([]byte, error)) (func(), func(), error) {
	ts, ref, cleanup, err := startBenchServer(cfg)
	if err != nil {
		return nil, nil, err
	}
	payload, err := body(ref)
	if err != nil {
		cleanup()
		return nil, nil, err
	}
	httpc := ts.Client()
	op := func() {
		resp, err := httpc.Post(ts.URL+"/v1/estimate", "application/json", bytes.NewReader(payload))
		if err != nil {
			panic(fmt.Sprintf("raybench: session scenario: %v", err))
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			panic(fmt.Sprintf("raybench: session scenario: status %d", resp.StatusCode))
		}
	}
	return op, cleanup, nil
}

// singleflightOp measures the collapse of concurrent identical computations:
// one op fires singleflightFan identical requests at a cache-disabled daemon,
// so every burst recomputes — once — and the rest ride the flight. Caching is
// off precisely so the singleflight path (not the LRU) is what answers.
func singleflightOp() (func(), func(), error) {
	ts, ref, cleanup, err := startBenchServer(server.Config{CacheSize: -1})
	if err != nil {
		return nil, nil, err
	}
	payload, err := server.BenchEstimateRefRequest(ref, 100, 1)
	if err != nil {
		cleanup()
		return nil, nil, err
	}
	httpc := ts.Client()
	op := func() {
		var wg sync.WaitGroup
		for i := 0; i < singleflightFan; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				resp, err := httpc.Post(ts.URL+"/v1/estimate", "application/json", bytes.NewReader(payload))
				if err != nil {
					panic(fmt.Sprintf("raybench: singleflight scenario: %v", err))
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					panic(fmt.Sprintf("raybench: singleflight scenario: status %d", resp.StatusCode))
				}
			}()
		}
		wg.Wait()
	}
	return op, cleanup, nil
}

// batchThroughputOp measures the NDJSON batch endpoint in its steady state:
// one op posts a batchLines-line batch against the session topology. The
// cache is sized above the batch so after the first (warmup) pass every line
// is a hit — the measurement isolates framing and per-line dispatch, which
// is exactly what batching amortizes against the per-request path.
func batchThroughputOp() (func(), func(), error) {
	ts, ref, cleanup, err := startBenchServer(server.Config{CacheSize: 1024})
	if err != nil {
		return nil, nil, err
	}
	body, err := server.BenchBatchBody(ref, 100, batchLines)
	if err != nil {
		cleanup()
		return nil, nil, err
	}
	httpc := ts.Client()
	op := func() {
		resp, err := httpc.Post(ts.URL+"/v1/estimate/batch", "application/x-ndjson", bytes.NewReader(body))
		if err != nil {
			panic(fmt.Sprintf("raybench: batch scenario: %v", err))
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			panic(fmt.Sprintf("raybench: batch scenario: status %d", resp.StatusCode))
		}
	}
	return op, cleanup, nil
}

// clusterTraceOverheadOp measures the per-request cost of cluster tracing on
// the shard path: every op posts a /v1/shard request carrying X-Trace-Context,
// so the daemon routes its request span into a per-trace collector instead of
// the server ring. Caching is off so each op recomputes — the delta against an
// untraced run is pure trace-collection overhead. Setup proves the contract
// the overhead is allowed to exist under: the response bytes with tracing on
// are identical to the bytes with tracing off, and the collected spans really
// are fetchable via GET /v1/trace/{id}.
func clusterTraceOverheadOp() (func(), func(), error) {
	srv := server.New(server.Config{CacheSize: -1})
	ts := httptest.NewServer(srv)
	cleanup := func() {
		ts.Close()
		srv.Close()
	}
	body, err := server.BenchShardRequest(7)
	if err != nil {
		cleanup()
		return nil, nil, err
	}
	httpc := ts.Client()
	traceID := "be9c5cc0de0ff00d0123456789abcdef"
	tc := obs.TraceContext{TraceID: traceID, ParentID: 0x1}
	post := func(traced bool) ([]byte, error) {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/shard", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		if traced {
			req.Header.Set(obs.HeaderTraceContext, tc.String())
		}
		resp, err := httpc.Do(req)
		if err != nil {
			return nil, err
		}
		out, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("status %d: %s", resp.StatusCode, out)
		}
		return out, nil
	}
	plain, err := post(false)
	if err != nil {
		cleanup()
		return nil, nil, fmt.Errorf("cluster-trace scenario untraced warmup: %w", err)
	}
	traced, err := post(true)
	if err != nil {
		cleanup()
		return nil, nil, fmt.Errorf("cluster-trace scenario traced warmup: %w", err)
	}
	if !bytes.Equal(plain, traced) {
		cleanup()
		return nil, nil, fmt.Errorf("cluster-trace scenario: traced shard response differs from untraced (%d vs %d bytes) — tracing must never touch the payload", len(traced), len(plain))
	}
	resp, err := httpc.Get(ts.URL + "/v1/trace/" + traceID)
	if err != nil {
		cleanup()
		return nil, nil, err
	}
	var bundle obs.TraceBundle
	err = json.NewDecoder(resp.Body).Decode(&bundle)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK || len(bundle.Spans) == 0 {
		cleanup()
		return nil, nil, fmt.Errorf("cluster-trace scenario: trace fetch status=%d spans=%d err=%v — collection is not working, overhead would measure nothing", resp.StatusCode, len(bundle.Spans), err)
	}
	op := func() {
		if _, err := post(true); err != nil {
			panic(fmt.Sprintf("raybench: cluster-trace scenario: %v", err))
		}
	}
	return op, cleanup, nil
}

// goodputUnderFaultsOp measures end-to-end goodput against a flaky daemon:
// the injector makes a fifth of requests fail transiently at admission and
// the occasional pool job error out, both surfacing as 503 + Retry-After,
// and the retrying client must still land every request. One op = one
// request completed despite the weather; the ns/op delta against
// server/estimate-compute is the price of the fault rate plus the retry
// machinery. (Panic faults are deliberately absent: a recovered panic is a
// terminal 500, which a correct client does not retry.)
func goodputUnderFaultsOp() (func(), func(), error) {
	inj, err := faults.Parse("seed=11,server.handler=error:0.2,pool.job=error:0.05")
	if err != nil {
		return nil, nil, err
	}
	prev := faults.Default()
	faults.SetDefault(inj)
	srv := server.New(server.Config{CacheSize: -1})
	ts := httptest.NewServer(srv)
	cleanup := func() {
		ts.Close()
		srv.Close()
		faults.SetDefault(prev)
	}
	c := client.New(client.Config{
		BaseURL:     ts.URL,
		HTTPClient:  ts.Client(),
		MaxAttempts: 10,
		BaseDelay:   time.Millisecond,
		MaxDelay:    20 * time.Millisecond,
		JitterSeed:  3,
	})
	var counter atomic.Uint64
	op := func() {
		topo, err := server.BenchTopology(40, 1)
		if err != nil {
			panic(fmt.Sprintf("raybench: goodput scenario topology: %v", err))
		}
		body, err := server.BenchEstimateRequest(topo, 100, counter.Add(1))
		if err != nil {
			panic(fmt.Sprintf("raybench: goodput scenario body: %v", err))
		}
		out, status, err := c.PostJSON(context.Background(), "/v1/estimate", body)
		if err != nil {
			panic(fmt.Sprintf("raybench: goodput scenario: %v", err))
		}
		if status != http.StatusOK {
			panic(fmt.Sprintf("raybench: goodput scenario: terminal status %d: %s", status, out))
		}
	}
	return op, cleanup, nil
}

// sampleSINRsOp builds the allocation-free Rayleigh sampling op over a
// links-sized instance with the given activation pattern.
func sampleSINRsOp(links int, seed uint64, fill func(active []bool)) (func(), func(), error) {
	net, err := benchNetwork(links, seed)
	if err != nil {
		return nil, nil, err
	}
	m := net.Gains()
	active := make([]bool, m.N)
	fill(active)
	vals := make([]float64, m.N)
	idx := make([]int, 0, m.N)
	src := rng.New(25)
	return func() { fading.SampleSINRsInto(m, active, src, vals, idx) }, noCleanup, nil
}

// serverOp starts an httptest rayschedd and returns an op that posts one
// /v1/estimate request and drains the response. When perRequest is true the
// body builder runs per call (fresh seed → cache miss); otherwise the body
// is built once and reused (cache hit after the first call).
func serverOp(cfg server.Config, body func(*atomic.Uint64) ([]byte, error), perRequest bool) (func(), func(), error) {
	srv := server.New(cfg)
	ts := httptest.NewServer(srv)
	cleanup := func() {
		ts.Close()
		srv.Close()
	}
	var counter atomic.Uint64
	var fixed []byte
	if !perRequest {
		b, err := body(&counter)
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		fixed = b
	}
	client := ts.Client()
	op := func() {
		payload := fixed
		if perRequest {
			b, err := body(&counter)
			if err != nil {
				panic(fmt.Sprintf("raybench: server scenario body: %v", err))
			}
			payload = b
		}
		resp, err := client.Post(ts.URL+"/v1/estimate", "application/json", bytes.NewReader(payload))
		if err != nil {
			panic(fmt.Sprintf("raybench: server scenario: %v", err))
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			panic(fmt.Sprintf("raybench: server scenario: status %d", resp.StatusCode))
		}
	}
	return op, cleanup, nil
}
