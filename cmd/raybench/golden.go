package main

// Golden determinism: every sim experiment is run under a small fixed-seed
// configuration (Workers unset, so GOMAXPROCS-wide parallelism must still
// reproduce — the worker-independence contract of sim.ParallelCtx is part
// of what the hash pins) and rendered to a canonical full-precision text
// form, whose SHA-256 lands in results/golden.json. Full precision matters:
// the %.2f-style human renderings would mask low-order floating-point
// drift, which is exactly the signal a determinism gate exists to catch.

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"rayfade/internal/benchio"
	"rayfade/internal/opt"
	"rayfade/internal/sim"
	"rayfade/internal/stats"
)

// goldenExperiment is one fixed-seed experiment in the manifest.
type goldenExperiment struct {
	name string
	note string
	run  func(ctx context.Context) (string, error)
}

// computeGolden runs every golden experiment and returns the fresh
// manifest.
func computeGolden(ctx context.Context) (*benchio.GoldenManifest, error) {
	m := &benchio.GoldenManifest{Entries: map[string]benchio.GoldenEntry{}}
	for _, exp := range goldenExperiments() {
		out, err := exp.run(ctx)
		if err != nil {
			return nil, fmt.Errorf("golden %s: %w", exp.name, err)
		}
		m.Entries[exp.name] = benchio.GoldenEntry{
			SHA256: benchio.HashBytes([]byte(out)),
			Note:   exp.note,
		}
	}
	return m, nil
}

// ---- canonical rendering ---------------------------------------------------

// fullPrec renders a float with enough digits to round-trip exactly.
func fullPrec(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func writeRunning(sb *strings.Builder, name string, r stats.Running) {
	fmt.Fprintf(sb, "%s n=%d mean=%s stderr=%s min=%s max=%s\n",
		name, r.N(), fullPrec(r.Mean()), fullPrec(r.StdErr()), fullPrec(r.Min()), fullPrec(r.Max()))
}

func writeSeries(sb *strings.Builder, name string, xs []float64, s *stats.Series) {
	for i, x := range xs {
		fmt.Fprintf(sb, "%s x=%s n=%d mean=%s stderr=%s\n",
			name, fullPrec(x), s.Acc[i].N(), fullPrec(s.Acc[i].Mean()), fullPrec(s.Acc[i].StdErr()))
	}
}

func writeCurves(sb *strings.Builder, xs []float64, curves map[string]*stats.Series) {
	names := make([]string, 0, len(curves))
	for name := range curves {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		writeSeries(sb, name, xs, curves[name])
	}
}

// ---- the experiments -------------------------------------------------------

func goldenExperiments() []goldenExperiment {
	return []goldenExperiment{
		{
			name: "figure1",
			note: "networks=2 links=40 txseeds=3 fadeseeds=2 probs=5@[0.2,1] seed=1",
			run: func(ctx context.Context) (string, error) {
				res, err := sim.RunFigure1Ctx(ctx, sim.Figure1Config{
					Networks: 2, Links: 40, TransmitSeeds: 3, FadingSeeds: 2,
					Probs: stats.Linspace(0.2, 1.0, 5), Seed: 1,
				})
				if err != nil {
					return "", err
				}
				var sb strings.Builder
				writeCurves(&sb, res.Probs, res.Curves)
				return sb.String(), nil
			},
		},
		{
			name: "figure2",
			note: "networks=2 links=40 rounds=15 seed=2 learner=rwm",
			run: func(ctx context.Context) (string, error) {
				res, err := sim.RunFigure2Ctx(ctx, sim.Figure2Config{
					Networks: 2, Links: 40, Rounds: 15, Seed: 2,
				})
				if err != nil {
					return "", err
				}
				var sb strings.Builder
				writeSeries(&sb, "non-fading", res.Rounds, res.NonFading)
				writeSeries(&sb, "rayleigh", res.Rounds, res.Rayleigh)
				writeRunning(&sb, "greedy-ref", res.GreedyRef)
				writeRunning(&sb, "regret-nf", res.RegretNF)
				writeRunning(&sb, "regret-rl", res.RegretRL)
				writeRunning(&sb, "converged-nf", res.ConvergedNF)
				writeRunning(&sb, "converged-rl", res.ConvergedRL)
				writeRunning(&sb, "sendprob-nf", res.FinalSendProbNF)
				writeRunning(&sb, "sendprob-rl", res.FinalSendProbRL)
				for i, s := range res.Lemma5NF {
					fmt.Fprintf(&sb, "lemma5-nf i=%d F=%s X=%s\n", i, fullPrec(s.F), fullPrec(s.X))
				}
				for i, s := range res.Lemma5RL {
					fmt.Fprintf(&sb, "lemma5-rl i=%d F=%s X=%s\n", i, fullPrec(s.F), fullPrec(s.X))
				}
				return sb.String(), nil
			},
		},
		{
			name: "optimum",
			note: "networks=2 links=30 restarts=2 swappasses=5 seed=3",
			run: func(ctx context.Context) (string, error) {
				res, err := sim.RunOptimumCtx(ctx, sim.OptimumConfig{
					Networks: 2, Links: 30,
					Search: opt.LocalSearchConfig{Restarts: 2, SwapPasses: 5},
					Seed:   3,
				})
				if err != nil {
					return "", err
				}
				var sb strings.Builder
				writeRunning(&sb, "greedy", res.Greedy)
				writeRunning(&sb, "local-search", res.LocalSearch)
				writeRunning(&sb, "rayleigh-of-optimum", res.RayleighOfOptimum)
				return sb.String(), nil
			},
		},
		{
			name: "reduction",
			note: "sizes=25,50 networksper=2 samples=50 seed=4",
			run: func(ctx context.Context) (string, error) {
				res, err := sim.RunReductionCtx(ctx, sim.ReductionConfig{
					Sizes: []int{25, 50}, NetworksPer: 2, SamplesPerStp: 50, Seed: 4,
				})
				if err != nil {
					return "", err
				}
				var sb strings.Builder
				for _, p := range res.Points {
					fmt.Fprintf(&sb, "point n=%d logstar=%d levels=%d\n", p.N, p.LogStar, p.Levels)
					writeRunning(&sb, "ratio", p.Ratio)
				}
				return sb.String(), nil
			},
		},
		{
			name: "baseline",
			note: "networks=2 links=40 seed=9",
			run: func(ctx context.Context) (string, error) {
				res, err := sim.RunBaselineCtx(ctx, sim.BaselineConfig{
					Networks: 2, Links: 40, Seed: 9,
				})
				if err != nil {
					return "", err
				}
				var sb strings.Builder
				writeRunning(&sb, "graph-set-size", res.GraphSetSize)
				writeRunning(&sb, "graph-sinr-valid", res.GraphSINRValid)
				writeRunning(&sb, "graph-rayleigh", res.GraphRayleigh)
				writeRunning(&sb, "sinr-set-size", res.SINRSetSize)
				writeRunning(&sb, "sinr-rayleigh", res.SINRRayleigh)
				writeRunning(&sb, "graph-slots", res.GraphSlots)
				writeRunning(&sb, "graph-violations", res.GraphViolations)
				writeRunning(&sb, "sinr-slots", res.SINRSlots)
				writeRunning(&sb, "sinr-rayleigh-slots", res.SINRRayleighSlots)
				return sb.String(), nil
			},
		},
		{
			name: "fadingsweep",
			note: "networks=2 links=40 txseeds=3 fadeseeds=2 prob=0.5 seed=5",
			run: func(ctx context.Context) (string, error) {
				res, err := sim.RunFadingSweepCtx(ctx, sim.FadingSweepConfig{
					Networks: 2, Links: 40, TransmitSeeds: 3, FadingSeeds: 2,
					Prob: 0.5, Seed: 5,
				})
				if err != nil {
					return "", err
				}
				var sb strings.Builder
				writeSeries(&sb, "per-shape", res.Shapes, res.PerShape)
				writeRunning(&sb, "non-fading", res.NonFading)
				writeRunning(&sb, "rayleigh-exact", res.Rayleigh)
				return sb.String(), nil
			},
		},
		{
			name: "latencyexp",
			note: "networks=2 links=40 trials=2 seed=8",
			run: func(ctx context.Context) (string, error) {
				res, err := sim.RunLatencyCtx(ctx, sim.LatencyConfig{
					Networks: 2, Links: 40, Trials: 2, Seed: 8,
				})
				if err != nil {
					return "", err
				}
				var sb strings.Builder
				writeRunning(&sb, "schedule-len", res.ScheduleLen)
				writeRunning(&sb, "schedule-rayleigh", res.ScheduleRayleigh)
				writeRunning(&sb, "aloha-nf", res.AlohaNF)
				writeRunning(&sb, "aloha-rl", res.AlohaRL)
				writeRunning(&sb, "backoff-nf", res.BackoffNF)
				writeRunning(&sb, "backoff-rl", res.BackoffRL)
				fmt.Fprintf(&sb, "incomplete=%d\n", res.Incomplete)
				return sb.String(), nil
			},
		},
		{
			name: "shannon",
			note: "networks=2 links=30 txseeds=2 fadeseeds=2 probs=4@[0.2,1] seed=7",
			run: func(ctx context.Context) (string, error) {
				res, err := sim.RunShannonCtx(ctx, sim.ShannonConfig{
					Networks: 2, Links: 30, TransmitSeeds: 2, FadingSeeds: 2,
					Probs: stats.Linspace(0.2, 1.0, 4), Seed: 7,
				})
				if err != nil {
					return "", err
				}
				var sb strings.Builder
				writeCurves(&sb, res.Probs, res.Curves)
				return sb.String(), nil
			},
		},
	}
}
