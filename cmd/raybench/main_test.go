package main

import (
	"context"
	"testing"

	"rayfade/internal/benchio"
)

// TestGoldenDeterministic recomputes the full manifest twice in one
// process: every experiment must hash identically, or the golden gate
// would flap. This also exercises the worker-independence contract, since
// the golden configs run at default (GOMAXPROCS) parallelism.
func TestGoldenDeterministic(t *testing.T) {
	a, err := computeGolden(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	b, err := computeGolden(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if diff := benchio.DiffGolden(a, b); !diff.Clean() {
		t.Fatalf("back-to-back golden runs diverge: %+v", diff)
	}
	if len(a.Entries) != len(goldenExperiments()) {
		t.Fatalf("manifest has %d entries, want %d", len(a.Entries), len(goldenExperiments()))
	}
}

// TestGoldenCoversEverySimExperiment pins the manifest contents: dropping
// an experiment from the golden suite should be a deliberate, visible act.
func TestGoldenCoversEverySimExperiment(t *testing.T) {
	want := map[string]bool{
		"figure1": true, "figure2": true, "optimum": true, "reduction": true,
		"baseline": true, "fadingsweep": true, "latencyexp": true, "shannon": true,
	}
	exps := goldenExperiments()
	if len(exps) != len(want) {
		t.Fatalf("golden suite has %d experiments, want %d", len(exps), len(want))
	}
	for _, exp := range exps {
		if !want[exp.name] {
			t.Errorf("unexpected golden experiment %q", exp.name)
		}
		if exp.note == "" {
			t.Errorf("golden experiment %q has no config note", exp.name)
		}
	}
}

// TestGoldenHonorsCancellation: a cancelled context must abort the run with
// an error, not hash a partial output.
func TestGoldenHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := computeGolden(ctx); err == nil {
		t.Fatal("computeGolden succeeded under a cancelled context")
	}
}

// TestScenarioNamesUniqueAndQuickSubset guards the registry invariants the
// compare gate depends on: names key baselines, and -quick must keep a
// non-trivial suite.
func TestScenarioNamesUniqueAndQuickSubset(t *testing.T) {
	suite := scenarios()
	seen := map[string]bool{}
	quick := 0
	for _, sc := range suite {
		if seen[sc.name] {
			t.Errorf("duplicate scenario name %q", sc.name)
		}
		seen[sc.name] = true
		if sc.quick {
			quick++
		}
	}
	if quick < 8 {
		t.Fatalf("quick subset has %d scenarios, want ≥ 8", quick)
	}
}

// TestScenarioSetupsRunOnce executes every scenario's op a single time —
// setup errors, panicking ops, or leaking cleanups fail here instead of
// mid-measurement in CI.
func TestScenarioSetupsRunOnce(t *testing.T) {
	for _, sc := range scenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			op, cleanup, err := sc.setup()
			if err != nil {
				t.Fatalf("setup: %v", err)
			}
			defer cleanup()
			op()
		})
	}
}
