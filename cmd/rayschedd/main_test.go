package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rayfade/internal/version"
)

// tempOut returns an *os.File test sink and a function reading what was
// written to it.
func tempOut(t *testing.T) (*os.File, func() string) {
	t.Helper()
	f, err := os.Create(filepath.Join(t.TempDir(), "out"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f, func() string {
		b, err := os.ReadFile(f.Name())
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
}

func TestRunVersion(t *testing.T) {
	out, read := tempOut(t)
	errOut, _ := tempOut(t)
	if code := run([]string{"-version"}, out, errOut); code != 0 {
		t.Fatalf("exit code %d", code)
	}
	if !strings.Contains(read(), "rayschedd "+version.Version) {
		t.Fatalf("version output: %q", read())
	}
}

func TestRunBadUsage(t *testing.T) {
	for name, args := range map[string][]string{
		"unknown flag":    {"-definitely-not-a-flag"},
		"positional args": {"serve"},
	} {
		out, _ := tempOut(t)
		errOut, _ := tempOut(t)
		if code := run(args, out, errOut); code != 2 {
			t.Errorf("%s: exit code %d, want 2", name, code)
		}
	}
}

func TestRunBindFailure(t *testing.T) {
	out, _ := tempOut(t)
	errOut, readErr := tempOut(t)
	// A malformed address makes ListenAndServe fail immediately.
	if code := run([]string{"-addr", "not:a:valid:addr"}, out, errOut); code != 1 {
		t.Fatalf("exit code %d, want 1\nstderr: %s", code, readErr())
	}
}
