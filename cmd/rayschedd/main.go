// Command rayschedd serves the rayfade scheduling algorithms over HTTP:
// capacity scheduling, latency/multihop scheduling, the non-fading→Rayleigh
// reduction, and Monte-Carlo success estimation, all on netio-format
// topologies. See internal/server for the endpoint catalogue.
//
// Usage:
//
//	rayschedd -addr :8080
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: it stops accepting
// connections, refuses new work (healthz reports "draining"), finishes
// in-flight requests (bounded by -drain-timeout), then drains
// the worker pool.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rayfade/internal/faults"
	"rayfade/internal/obs"
	"rayfade/internal/server"
	"rayfade/internal/version"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment injected, so tests can drive it.
func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("rayschedd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", ":8080", "listen address")
		workers     = fs.Int("workers", 0, "compute workers (0 = GOMAXPROCS)")
		queue       = fs.Int("queue", 64, "queued jobs before requests are answered 429")
		cacheSize   = fs.Int("cache", 256, "response cache entries (0 disables)")
		timeout     = fs.Duration("timeout", 30*time.Second, "default per-request compute deadline")
		maxTimeout  = fs.Duration("max-timeout", 5*time.Minute, "cap on request-supplied timeout_ms")
		maxLinks    = fs.Int("max-links", 5000, "largest accepted topology (links)")
		maxBody     = fs.Int64("max-body", 16<<20, "largest accepted request body (bytes)")
		sessions    = fs.Int("sessions", 128, "topology session entries (0 disables the session API)")
		batchLines  = fs.Int("batch-lines", 10000, "largest accepted /v1/estimate/batch request (lines)")
		drain       = fs.Duration("drain-timeout", 10*time.Second, "graceful-shutdown drain window")
		logLevel    = fs.String("log-level", "info", "access-log level: debug, info, warn, error, or off")
		debug       = fs.Bool("debug", false, "mount /debug/obs and /debug/pprof/ (exposes runtime internals)")
		faultSpec   = fs.String("faults", "", `inject deterministic faults, e.g. "seed=1,server.handler=error:0.1,pool.job=panic:0.01"`)
		showVersion = fs.Bool("version", false, "print version and exit")
	)
	// -drain predates -drain-timeout; both names set the same window.
	fs.DurationVar(drain, "drain", *drain, "alias for -drain-timeout")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *showVersion {
		fmt.Fprintf(stdout, "rayschedd %s\n", version.Version)
		return 0
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "rayschedd: unexpected argument %q\n", fs.Arg(0))
		fs.Usage()
		return 2
	}
	if *faultSpec != "" {
		inj, err := faults.Parse(*faultSpec)
		if err != nil {
			fmt.Fprintf(stderr, "rayschedd: %v\n", err)
			return 2
		}
		faults.SetDefault(inj)
		defer faults.SetDefault(nil)
		fmt.Fprintf(stderr, "rayschedd: fault injection armed: %s\n", *faultSpec)
	}

	cache := *cacheSize
	if cache == 0 {
		cache = -1 // flag semantics: 0 disables; Config uses negative for that
	}
	sess := *sessions
	if sess == 0 {
		sess = -1
	}
	// The daemon logs JSON records (one access-log line per request) so the
	// output is machine-collectable; "off" keeps the pre-observability
	// silence.
	log := obs.Discard()
	if *logLevel != "off" {
		lvl, err := obs.ParseLevel(*logLevel)
		if err != nil {
			fmt.Fprintf(stderr, "rayschedd: %v\n", err)
			return 2
		}
		log = obs.NewLogger(stderr, lvl, true)
	}
	srv := server.New(server.Config{
		Workers:        *workers,
		QueueSize:      *queue,
		CacheSize:      cache,
		MaxLinks:       *maxLinks,
		MaxBodyBytes:   *maxBody,
		MaxSessions:    sess,
		MaxBatchLines:  *batchLines,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		Log:            log,
		Debug:          *debug,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(stdout, "rayschedd %s listening on %s\n", version.Version, *addr)

	select {
	case err := <-errc:
		// ListenAndServe only returns on failure to bind or serve.
		fmt.Fprintf(stderr, "rayschedd: %v\n", err)
		srv.Close()
		return 1
	case <-ctx.Done():
	}

	// Three-phase graceful drain. First flip the server into drain mode: new
	// POSTs answer 503 + Retry-After and /healthz reports "draining", so a
	// cluster coordinator routes around this worker instead of burning lease
	// attempts against a dying socket. Then wait (bounded by -drain-timeout)
	// for queued and in-flight compute to finish, then stop the listener and
	// drain the pool.
	fmt.Fprintln(stdout, "rayschedd: draining")
	srv.SetDraining(true)
	deadline := time.Now().Add(*drain)
	for srv.Busy() && time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
	}
	if srv.Busy() {
		fmt.Fprintf(stderr, "rayschedd: drain window (%s) expired with work in flight\n", *drain)
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(stderr, "rayschedd: shutdown: %v\n", err)
	}
	srv.Close()
	<-errc // ListenAndServe has returned http.ErrServerClosed by now
	return 0
}
