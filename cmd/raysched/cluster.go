package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"rayfade/internal/client"
	"rayfade/internal/dist"
	"rayfade/internal/obs"
	"rayfade/internal/progress"
	"rayfade/internal/server"
	"rayfade/internal/sim"
)

// cmdCluster runs Figure 1 distributed across a set of rayschedd workers:
// the coordinator shards the replication index space, dispatches shards over
// POST /v1/shard with lease-based reassignment, merges the results into a
// checkpoint, and replays it through the exact single-node pipeline — so the
// output is byte-identical to `raysched figure1` with the same parameters.
func cmdCluster(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("cluster", flag.ExitOnError)
	workersFlag := fs.String("workers", "", "comma-separated rayschedd base URLs (required), e.g. http://10.0.0.1:8080,http://10.0.0.2:8080")
	networks := fs.Int("networks", 40, "number of random networks")
	links := fs.Int("links", 100, "links per network")
	txSeeds := fs.Int("txseeds", 25, "transmit-set draws per probability")
	fdSeeds := fs.Int("fadeseeds", 10, "fading draws per transmit set")
	points := fs.Int("points", 20, "probability grid points")
	seed := fs.Uint64("seed", 1, "master seed")
	topology := fs.String("topology", "uniform", "receiver deployment: uniform or cluster")
	shardSize := fs.Int("shard-size", 0, "replications per shard (0 = about four waves per worker)")
	lease := fs.Duration("lease", 2*time.Minute, "per-dispatch lease; a worker missing its lease has the shard reassigned")
	maxAttempts := fs.Int("max-attempts", 4, "dispatch attempts per shard across all workers before the run aborts")
	deadAfter := fs.Int("dead-after", 2, "consecutive failures after which a worker is quarantined")
	journal := fs.String("journal", "", "journal landed shards into this directory; rerunning with the same directory resumes, re-dispatching only uncovered ranges")
	hedge := fs.Duration("hedge", 0, "speculatively re-dispatch a shard in flight longer than this (0 = adaptive from completed shard durations, negative = off)")
	probeInterval := fs.Duration("probe-interval", 2*time.Second, "base interval between /healthz probes of a quarantined worker")
	maxProbes := fs.Int("max-probes", 8, "consecutive failed probes before a quarantined worker is declared dead")
	format := fs.String("format", "md", "output format: csv, md, ascii, svg")
	out := fs.String("out", "", "write CSV output atomically to this file instead of stdout (implies -format csv)")
	mergedCk := fs.String("merged-checkpoint", "", "keep the merged checkpoint at this path (default: a temp file, removed afterwards)")
	prog := fs.Bool("progress", false, "report cluster-wide progress to stderr")
	status := fs.Bool("status", false, "print a one-shot aggregated telemetry snapshot of every worker (/healthz + /metrics) and exit")
	of := registerObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	workers := splitWorkers(*workersFlag)
	if len(workers) == 0 {
		return fmt.Errorf("cluster: -workers is required (comma-separated rayschedd URLs)")
	}
	if *status {
		return runClusterStatus(ctx, workers)
	}
	ctx, obsDone, err := of.start(ctx)
	if err != nil {
		return err
	}
	err = runCluster(ctx, of, clusterParams{
		workers: workers,
		wire: server.Figure1ShardConfig{
			Networks: *networks, Links: *links,
			TransmitSeeds: *txSeeds, FadingSeeds: *fdSeeds,
			Points: *points, Seed: *seed, Topology: *topology,
		},
		shardSize:     *shardSize,
		lease:         *lease,
		maxAttempts:   *maxAttempts,
		deadAfter:     *deadAfter,
		journal:       *journal,
		hedge:         *hedge,
		probeInterval: *probeInterval,
		maxProbes:     *maxProbes,
		format:        *format,
		out:           *out,
		mergedCk:      *mergedCk,
		progress:      *prog,
	})
	if ferr := obsDone(); err == nil {
		err = ferr
	}
	return err
}

// clusterParams is the resolved flag set for one cluster run.
type clusterParams struct {
	workers       []string
	wire          server.Figure1ShardConfig
	shardSize     int
	lease         time.Duration
	maxAttempts   int
	deadAfter     int
	journal       string
	hedge         time.Duration
	probeInterval time.Duration
	maxProbes     int
	format        string
	out           string
	mergedCk      string
	progress      bool
}

func runCluster(ctx context.Context, of *obsFlags, p clusterParams) error {
	cfg := p.wire.SimConfig()
	sha, err := sim.Figure1ConfigSHA(cfg)
	if err != nil {
		return err
	}

	// The coordinator reuses the -log level for its own event stream; the
	// sim logger installed by of.start only covers the local replay.
	log := obs.Discard()
	if of.logLevel != "" {
		lvl, err := obs.ParseLevel(of.logLevel)
		if err != nil {
			return err
		}
		log = obs.NewLogger(os.Stderr, lvl, false)
	}
	var tracker *progress.Tracker
	if p.progress {
		tracker = progress.New("cluster", os.Stderr)
		tracker.Start(progressInterval)
		defer tracker.Stop()
	}

	co, err := dist.New(dist.Config{
		Workers:       p.workers,
		ShardSize:     p.shardSize,
		LeaseTimeout:  p.lease,
		MaxAttempts:   p.maxAttempts,
		DeadAfter:     p.deadAfter,
		JournalDir:    p.journal,
		HedgeAfter:    p.hedge,
		ProbeInterval: p.probeInterval,
		MaxProbes:     p.maxProbes,
		Client:        client.Config{JitterSeed: p.wire.Seed},
		Log:           log,
		Tracker:       tracker,
	})
	if err != nil {
		return err
	}
	live, err := co.Discover(ctx)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "raysched: cluster: %d/%d workers live\n", len(live), len(p.workers))
	for _, w := range live {
		fmt.Fprintf(os.Stderr, "raysched: cluster:   %s instance=%s gomaxprocs=%d\n", w.URL, w.Instance, w.GoMaxProcs)
	}

	wire := p.wire
	timeoutMS := p.lease.Milliseconds()
	job := dist.Job{
		Experiment: sim.ExperimentFigure1,
		ConfigSHA:  sha,
		Reps:       cfg.Networks,
		NewRequest: func(lo, hi int) ([]byte, error) {
			return json.Marshal(server.ShardRequest{
				Experiment: sim.ExperimentFigure1,
				Lo:         lo, Hi: hi,
				Figure1:   &wire,
				TimeoutMS: timeoutMS,
			})
		},
	}
	results, st, err := co.Run(ctx, job)
	if err != nil {
		return fmt.Errorf("cluster run (%d/%d shards merged, %d resumed, %d reassigned, %d dead workers): %w",
			st.Completed, st.Shards, st.Resumed, st.Reassigned, st.DeadWorkers, err)
	}
	fmt.Fprintf(os.Stderr, "raysched: cluster: %d shards merged (%d resumed from journal), %d reassigned, %d hedged, %d quarantined (%d readmitted), %d dead workers\n",
		st.Shards, st.Resumed, st.Reassigned, st.Hedged, st.Quarantined, st.Readmitted, st.DeadWorkers)

	// With tracing on, pull each surviving worker's span collection for this
	// run so of's finish writes one merged cluster trace. The trace ID is
	// the run ID — the same value the dispatch spans sent in X-Trace-Context.
	if traceID := obs.RunID(ctx); of.trace != "" && traceID != "" {
		for _, w := range live {
			b, err := co.FetchTrace(ctx, w.URL, traceID)
			if err != nil {
				// A worker that died mid-run, or one that served no shards,
				// simply contributes nothing — the merged trace covers the
				// survivors.
				fmt.Fprintf(os.Stderr, "raysched: cluster: no trace from %s: %v\n", w.URL, err)
				continue
			}
			of.addBundles(b)
		}
	}

	ckPath := p.mergedCk
	if ckPath == "" {
		dir, err := os.MkdirTemp("", "raysched-cluster-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		ckPath = filepath.Join(dir, "merged.ckpt")
	}
	if err := sim.WriteMergedCheckpoint(ckPath, job.Experiment, sha, job.Reps, results); err != nil {
		return err
	}

	// Replay: every replication restores from the merged checkpoint, so this
	// computes nothing — it routes the remote results through the identical
	// aggregation and rendering path as a single-node run.
	cfg.Checkpoint = ckPath
	res, err := sim.RunFigure1Ctx(ctx, cfg)
	if err != nil {
		return err
	}
	return renderFigure1(res, p.format, p.out)
}

// runClusterStatus is `raysched cluster -status`: one scrape sweep over the
// configured workers, rendered as an aggregated RED-style report on stdout.
// Unreachable workers are reported, not fatal — a status check of a
// degraded cluster must still answer; the command fails only when no worker
// is reachable at all.
func runClusterStatus(ctx context.Context, workers []string) error {
	co, err := dist.New(dist.Config{Workers: workers})
	if err != nil {
		return err
	}
	snap := co.Snapshot(ctx)
	snap.WriteText(os.Stdout)
	if snap.Live == 0 {
		return fmt.Errorf("cluster: none of the %d configured workers is reachable", len(workers))
	}
	return nil
}

// splitWorkers parses the -workers flag: comma-separated URLs, blanks
// tolerated, trailing slashes trimmed so URL joining stays uniform.
func splitWorkers(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimRight(strings.TrimSpace(part), "/")
		if part != "" {
			out = append(out, part)
		}
	}
	return out
}
