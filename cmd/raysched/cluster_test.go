package main

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rayfade/internal/obs"
	"rayfade/internal/server"
)

// clusterTestWorkers starts n in-process rayschedd instances and returns the
// -workers flag value addressing them.
func clusterTestWorkers(t *testing.T, n int) string {
	t.Helper()
	urls := make([]string, n)
	for i := range urls {
		s := server.New(server.Config{Workers: 2, QueueSize: 16})
		ts := httptest.NewServer(s)
		t.Cleanup(func() { ts.Close(); s.Close() })
		urls[i] = ts.URL
	}
	return strings.Join(urls, ",")
}

// TestCmdClusterByteIdenticalToFigure1 is the CLI-level determinism claim:
// `raysched cluster` across three workers writes the same bytes as
// `raysched figure1` with identical parameters.
func TestCmdClusterByteIdenticalToFigure1(t *testing.T) {
	dir := t.TempDir()
	single := filepath.Join(dir, "single.csv")
	clustered := filepath.Join(dir, "cluster.csv")
	params := []string{"-networks", "4", "-links", "12", "-txseeds", "2",
		"-fadeseeds", "2", "-points", "3", "-seed", "7"}

	if err := cmdFigure1(context.Background(), append(append([]string{}, params...), "-out", single)); err != nil {
		t.Fatalf("figure1: %v", err)
	}
	args := append(append([]string{}, params...),
		"-workers", clusterTestWorkers(t, 3),
		"-shard-size", "1",
		"-out", clustered)
	if err := cmdCluster(context.Background(), args); err != nil {
		t.Fatalf("cluster: %v", err)
	}

	got, err := os.ReadFile(clustered)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(single)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("cluster CSV differs from single-node figure1:\n--- cluster\n%s\n--- single\n%s", got, want)
	}
}

// TestCmdClusterKeepsMergedCheckpoint: -merged-checkpoint persists a
// checkpoint that a plain figure1 run resumes from, reproducing the cluster's
// bytes. The internal suites prove resume is zero-recompute; here the claim
// is that the CLI artifact round-trips through the public resume path.
func TestCmdClusterKeepsMergedCheckpoint(t *testing.T) {
	dir := t.TempDir()
	ck := filepath.Join(dir, "merged.ckpt")
	params := []string{"-networks", "3", "-links", "12", "-txseeds", "2",
		"-fadeseeds", "2", "-points", "3", "-seed", "7"}
	clustered := filepath.Join(dir, "cluster.csv")
	args := append(append([]string{}, params...),
		"-workers", clusterTestWorkers(t, 2),
		"-merged-checkpoint", ck,
		"-out", clustered)
	if err := cmdCluster(context.Background(), args); err != nil {
		t.Fatalf("cluster: %v", err)
	}
	if _, err := os.Stat(ck); err != nil {
		t.Fatalf("merged checkpoint was not kept: %v", err)
	}

	resumed := filepath.Join(dir, "resumed.csv")
	resumeArgs := append(append([]string{}, params...), "-checkpoint", ck, "-out", resumed)
	if err := cmdFigure1(context.Background(), resumeArgs); err != nil {
		t.Fatalf("figure1 resume from merged checkpoint: %v", err)
	}
	got, err := os.ReadFile(resumed)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(clustered)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("figure1 resumed from the merged checkpoint differs from the cluster output")
	}
}

func TestCmdClusterRequiresWorkers(t *testing.T) {
	if err := cmdCluster(context.Background(), []string{"-networks", "2"}); err == nil {
		t.Fatal("cluster with no -workers succeeded")
	}
}

func TestSplitWorkers(t *testing.T) {
	got := splitWorkers(" http://a:1/, ,http://b:2 ,")
	if len(got) != 2 || got[0] != "http://a:1" || got[1] != "http://b:2" {
		t.Fatalf("splitWorkers: %q", got)
	}
	if splitWorkers("") != nil {
		t.Fatal("empty spec should yield nil")
	}
}

// TestCmdClusterMergedTrace: `raysched cluster -trace` writes one merged
// Chrome trace containing the coordinator's spans plus span bundles fetched
// back from the workers, with correct cross-process parent links.
func TestCmdClusterMergedTrace(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "cluster.trace.json")
	args := []string{"-networks", "4", "-links", "12", "-txseeds", "2",
		"-fadeseeds", "2", "-points", "3", "-seed", "7",
		"-workers", clusterTestWorkers(t, 2),
		"-shard-size", "1",
		"-trace", trace,
		"-format", "csv", "-out", filepath.Join(dir, "out.csv")}
	if err := cmdCluster(context.Background(), args); err != nil {
		t.Fatalf("cluster: %v", err)
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatalf("merged trace not written: %v", err)
	}
	stats, err := obs.ValidateTrace(data)
	if err != nil {
		t.Fatalf("merged trace invalid: %v", err)
	}
	// Coordinator plus at least one worker; with shard-size 1 and four
	// networks both workers almost always serve, but one racing ahead and
	// taking every shard is legal.
	if stats.Procs < 2 {
		t.Fatalf("merged trace has %d processes, want >= 2 (coordinator + worker):\n%s", stats.Procs, data)
	}
	if !stats.Nested {
		t.Fatal("merged trace has no nested spans")
	}
	out := string(data)
	for _, want := range []string{`"dist.shard"`, `"http./v1/shard"`, `"remote_parent": true`, `"coordinator"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("merged trace missing %s:\n%s", want, out)
		}
	}
}

// TestCmdClusterStatus: `-status` scrapes the workers and prints the
// aggregated snapshot; with no reachable worker it fails.
func TestCmdClusterStatus(t *testing.T) {
	urls := clusterTestWorkers(t, 2)
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := cmdCluster(context.Background(), []string{"-status", "-workers", urls})
	w.Close()
	os.Stdout = old
	var buf bytes.Buffer
	buf.ReadFrom(r)
	if runErr != nil {
		t.Fatalf("cluster -status: %v\n%s", runErr, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "cluster: 2/2 workers live") {
		t.Fatalf("status header wrong:\n%s", out)
	}
	if !strings.Contains(out, "totals:") || !strings.Contains(out, "instance=") {
		t.Fatalf("status body incomplete:\n%s", out)
	}

	if err := cmdCluster(context.Background(), []string{"-status", "-workers", "http://127.0.0.1:1"}); err == nil {
		t.Fatal("cluster -status with no reachable worker succeeded")
	}
}
