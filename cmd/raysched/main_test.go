package main

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rayfade/internal/netio"
	"rayfade/internal/network"
	"rayfade/internal/rng"
)

// TestMain doubles as the re-exec entry point for the SIGKILL test: when
// RAYSCHED_FIGURE1_CHILD is set the test binary behaves like `raysched
// figure1 <args>` and never runs the suite, so the parent test can kill a
// real process mid-run.
func TestMain(m *testing.M) {
	if os.Getenv("RAYSCHED_FIGURE1_CHILD") == "1" {
		args := strings.Split(os.Getenv("RAYSCHED_FIGURE1_ARGS"), "\x1f")
		if err := cmdFigure1(context.Background(), args); err != nil {
			fmt.Fprintln(os.Stderr, "figure1 child:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// captureStdout runs fn with os.Stdout redirected to a pipe and returns
// what it printed.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(r)
		done <- buf.String()
	}()
	errRun := fn()
	w.Close()
	os.Stdout = old
	out := <-done
	if errRun != nil {
		t.Fatalf("command failed: %v\noutput:\n%s", errRun, out)
	}
	return out
}

func TestCmdFigure1Tiny(t *testing.T) {
	out := captureStdout(t, func() error {
		return cmdFigure1(context.Background(), []string{"-networks", "2", "-links", "20", "-txseeds", "2",
			"-fadeseeds", "2", "-points", "3", "-format", "csv"})
	})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header + 3 points
		t.Fatalf("csv lines: %d\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "uniform/rayleigh_mean") {
		t.Fatalf("header: %s", lines[0])
	}
}

func TestCmdFigure1SVG(t *testing.T) {
	out := captureStdout(t, func() error {
		return cmdFigure1(context.Background(), []string{"-networks", "1", "-links", "15", "-txseeds", "2",
			"-fadeseeds", "1", "-points", "3", "-format", "svg"})
	})
	if !strings.HasPrefix(out, "<svg") || !strings.Contains(out, "</svg>") {
		t.Fatalf("not an SVG document:\n%s", out[:120])
	}
}

func TestCmdFigure1Formats(t *testing.T) {
	for _, format := range []string{"md", "ascii"} {
		out := captureStdout(t, func() error {
			return cmdFigure1(context.Background(), []string{"-networks", "1", "-links", "15", "-txseeds", "2",
				"-fadeseeds", "1", "-points", "3", "-format", format})
		})
		if len(out) == 0 {
			t.Fatalf("format %s produced no output", format)
		}
	}
}

func TestCmdFigure1ClusterTopology(t *testing.T) {
	out := captureStdout(t, func() error {
		return cmdFigure1(context.Background(), []string{"-networks", "1", "-links", "40", "-txseeds", "2",
			"-fadeseeds", "1", "-points", "3", "-topology", "cluster", "-format", "csv"})
	})
	if !strings.Contains(out, "uniform/rayleigh_mean") {
		t.Fatalf("output:\n%s", out)
	}
}

// TestFigure1SIGKILLResumeByteIdentical is the end-to-end crash-safety
// claim: a figure1 process killed with SIGKILL (no signal handler, no
// graceful anything) mid-run leaves a checkpoint that a rerun resumes from,
// and the resumed CSV is byte-identical to an uninterrupted run. Delay
// faults slow the child's replications so the kill reliably lands mid-run.
func TestFigure1SIGKILLResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs the test binary")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Skipf("cannot locate test binary: %v", err)
	}
	dir := t.TempDir()
	ck := filepath.Join(dir, "fig1.ckpt")
	common := []string{"-networks", "6", "-links", "20", "-txseeds", "2",
		"-fadeseeds", "2", "-points", "3", "-workers", "1"}

	childArgs := append(append([]string{}, common...),
		"-checkpoint", ck,
		"-out", filepath.Join(dir, "child.csv"),
		"-faults", "seed=1,sim.replication=delay:1:300ms")
	cmd := exec.Command(exe, "-test.run=^$")
	cmd.Env = append(os.Environ(),
		"RAYSCHED_FIGURE1_CHILD=1",
		"RAYSCHED_FIGURE1_ARGS="+strings.Join(childArgs, "\x1f"))
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// The checkpoint is written atomically, so its appearance means at
	// least one replication is durably recorded — kill the moment it shows.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if fi, err := os.Stat(ck); err == nil && fi.Size() > 0 {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatal("checkpoint file never appeared")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait() // expected to report the kill; the checkpoint is what matters

	resumed := filepath.Join(dir, "resumed.csv")
	resumeArgs := append(append([]string{}, common...), "-checkpoint", ck, "-out", resumed)
	if err := cmdFigure1(context.Background(), resumeArgs); err != nil {
		t.Fatalf("resume: %v", err)
	}
	ref := filepath.Join(dir, "ref.csv")
	refArgs := append(append([]string{}, common...), "-out", ref)
	if err := cmdFigure1(context.Background(), refArgs); err != nil {
		t.Fatalf("reference run: %v", err)
	}
	got, err := os.ReadFile(resumed)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed run differs from uninterrupted run:\nresumed:\n%s\nreference:\n%s", got, want)
	}
}

func TestCmdFigure2Tiny(t *testing.T) {
	out := captureStdout(t, func() error {
		return cmdFigure2(context.Background(), []string{"-networks", "2", "-links", "20", "-rounds", "10", "-format", "csv"})
	})
	if !strings.Contains(out, "round,non-fading_mean") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestCmdFigure2Exp3AndSummary(t *testing.T) {
	out := captureStdout(t, func() error {
		return cmdFigure2(context.Background(), []string{"-networks", "2", "-links", "20", "-rounds", "10", "-learner", "exp3"})
	})
	for _, want := range []string{"lemma-5 non-fading", "lemma-5 rayleigh", "final mean send prob"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestCmdOptimumTiny(t *testing.T) {
	out := captureStdout(t, func() error {
		return cmdOptimum(context.Background(), []string{"-networks", "2", "-links", "20", "-restarts", "2"})
	})
	if !strings.Contains(out, "local-search optimum") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestCmdCapacityTiny(t *testing.T) {
	out := captureStdout(t, func() error {
		return cmdCapacity(context.Background(), []string{"-links", "25"})
	})
	for _, want := range []string{"greedy uniform", "local search", "power control"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestCmdLatencyTiny(t *testing.T) {
	out := captureStdout(t, func() error {
		return cmdLatency(context.Background(), []string{"-networks", "2", "-links", "20", "-trials", "1"})
	})
	for _, want := range []string{"repeated capacity", "ALOHA", "backoff"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestCmdCapacityFromInputFile(t *testing.T) {
	// Generate a workload with raygen's format and feed it back via -input.
	dir := t.TempDir()
	path := dir + "/net.json"
	cfg := network.Figure1Config()
	cfg.N = 12
	net, err := network.Random(cfg, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if err := netio.SaveFile(path, net); err != nil {
		t.Fatal(err)
	}
	out := captureStdout(t, func() error {
		return cmdCapacity(context.Background(), []string{"-input", path})
	})
	if !strings.Contains(out, "greedy uniform") {
		t.Fatalf("output:\n%s", out)
	}
	// Missing file errors out.
	if err := cmdCapacity(context.Background(), []string{"-input", dir + "/nope.json"}); err == nil {
		t.Fatal("missing input accepted")
	}
}

func TestCmdProbeTiny(t *testing.T) {
	out := captureStdout(t, func() error {
		return cmdProbe([]string{"-links", "6"})
	})
	if !strings.Contains(out, "expected successes") {
		t.Fatalf("output:\n%s", out)
	}
	// 6 links → 6 data rows between header and footer.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 8 {
		t.Fatalf("probe printed %d lines:\n%s", len(lines), out)
	}
}

func TestCmdReductionTiny(t *testing.T) {
	out := captureStdout(t, func() error {
		return cmdReduction(context.Background(), []string{"-networks", "1", "-samples", "20"})
	})
	if !strings.Contains(out, "rayleigh / best step") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestCmdFadingTiny(t *testing.T) {
	out := captureStdout(t, func() error {
		return cmdFading(context.Background(), []string{"-networks", "1", "-links", "15"})
	})
	if !strings.Contains(out, "Rayleigh (paper's model)") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestCmdTopologyTiny(t *testing.T) {
	out := captureStdout(t, func() error {
		return cmdTopology(context.Background(), []string{"-side", "3", "-format", "csv"})
	})
	if !strings.Contains(out, "grid/non-fading_mean") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestCmdBaselineTiny(t *testing.T) {
	out := captureStdout(t, func() error {
		return cmdBaseline(context.Background(), []string{"-networks", "2", "-links", "30"})
	})
	for _, want := range []string{"graph independent set", "SINR violations", "rayleigh replay"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestCmdShannonTiny(t *testing.T) {
	out := captureStdout(t, func() error {
		return cmdShannon(context.Background(), []string{"-networks", "1", "-links", "15", "-format", "csv"})
	})
	if !strings.Contains(out, "shannon/rayleigh_mean") {
		t.Fatalf("output:\n%s", out)
	}
}
