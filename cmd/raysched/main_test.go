package main

import (
	"bytes"
	"context"
	"os"
	"strings"
	"testing"

	"rayfade/internal/netio"
	"rayfade/internal/network"
	"rayfade/internal/rng"
)

// captureStdout runs fn with os.Stdout redirected to a pipe and returns
// what it printed.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(r)
		done <- buf.String()
	}()
	errRun := fn()
	w.Close()
	os.Stdout = old
	out := <-done
	if errRun != nil {
		t.Fatalf("command failed: %v\noutput:\n%s", errRun, out)
	}
	return out
}

func TestCmdFigure1Tiny(t *testing.T) {
	out := captureStdout(t, func() error {
		return cmdFigure1(context.Background(), []string{"-networks", "2", "-links", "20", "-txseeds", "2",
			"-fadeseeds", "2", "-points", "3", "-format", "csv"})
	})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header + 3 points
		t.Fatalf("csv lines: %d\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "uniform/rayleigh_mean") {
		t.Fatalf("header: %s", lines[0])
	}
}

func TestCmdFigure1SVG(t *testing.T) {
	out := captureStdout(t, func() error {
		return cmdFigure1(context.Background(), []string{"-networks", "1", "-links", "15", "-txseeds", "2",
			"-fadeseeds", "1", "-points", "3", "-format", "svg"})
	})
	if !strings.HasPrefix(out, "<svg") || !strings.Contains(out, "</svg>") {
		t.Fatalf("not an SVG document:\n%s", out[:120])
	}
}

func TestCmdFigure1Formats(t *testing.T) {
	for _, format := range []string{"md", "ascii"} {
		out := captureStdout(t, func() error {
			return cmdFigure1(context.Background(), []string{"-networks", "1", "-links", "15", "-txseeds", "2",
				"-fadeseeds", "1", "-points", "3", "-format", format})
		})
		if len(out) == 0 {
			t.Fatalf("format %s produced no output", format)
		}
	}
}

func TestCmdFigure1ClusterTopology(t *testing.T) {
	out := captureStdout(t, func() error {
		return cmdFigure1(context.Background(), []string{"-networks", "1", "-links", "40", "-txseeds", "2",
			"-fadeseeds", "1", "-points", "3", "-topology", "cluster", "-format", "csv"})
	})
	if !strings.Contains(out, "uniform/rayleigh_mean") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestCmdFigure2Tiny(t *testing.T) {
	out := captureStdout(t, func() error {
		return cmdFigure2(context.Background(), []string{"-networks", "2", "-links", "20", "-rounds", "10", "-format", "csv"})
	})
	if !strings.Contains(out, "round,non-fading_mean") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestCmdFigure2Exp3AndSummary(t *testing.T) {
	out := captureStdout(t, func() error {
		return cmdFigure2(context.Background(), []string{"-networks", "2", "-links", "20", "-rounds", "10", "-learner", "exp3"})
	})
	for _, want := range []string{"lemma-5 non-fading", "lemma-5 rayleigh", "final mean send prob"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestCmdOptimumTiny(t *testing.T) {
	out := captureStdout(t, func() error {
		return cmdOptimum(context.Background(), []string{"-networks", "2", "-links", "20", "-restarts", "2"})
	})
	if !strings.Contains(out, "local-search optimum") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestCmdCapacityTiny(t *testing.T) {
	out := captureStdout(t, func() error {
		return cmdCapacity(context.Background(), []string{"-links", "25"})
	})
	for _, want := range []string{"greedy uniform", "local search", "power control"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestCmdLatencyTiny(t *testing.T) {
	out := captureStdout(t, func() error {
		return cmdLatency(context.Background(), []string{"-networks", "2", "-links", "20", "-trials", "1"})
	})
	for _, want := range []string{"repeated capacity", "ALOHA", "backoff"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestCmdCapacityFromInputFile(t *testing.T) {
	// Generate a workload with raygen's format and feed it back via -input.
	dir := t.TempDir()
	path := dir + "/net.json"
	cfg := network.Figure1Config()
	cfg.N = 12
	net, err := network.Random(cfg, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if err := netio.SaveFile(path, net); err != nil {
		t.Fatal(err)
	}
	out := captureStdout(t, func() error {
		return cmdCapacity(context.Background(), []string{"-input", path})
	})
	if !strings.Contains(out, "greedy uniform") {
		t.Fatalf("output:\n%s", out)
	}
	// Missing file errors out.
	if err := cmdCapacity(context.Background(), []string{"-input", dir + "/nope.json"}); err == nil {
		t.Fatal("missing input accepted")
	}
}

func TestCmdProbeTiny(t *testing.T) {
	out := captureStdout(t, func() error {
		return cmdProbe([]string{"-links", "6"})
	})
	if !strings.Contains(out, "expected successes") {
		t.Fatalf("output:\n%s", out)
	}
	// 6 links → 6 data rows between header and footer.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 8 {
		t.Fatalf("probe printed %d lines:\n%s", len(lines), out)
	}
}

func TestCmdReductionTiny(t *testing.T) {
	out := captureStdout(t, func() error {
		return cmdReduction(context.Background(), []string{"-networks", "1", "-samples", "20"})
	})
	if !strings.Contains(out, "rayleigh / best step") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestCmdFadingTiny(t *testing.T) {
	out := captureStdout(t, func() error {
		return cmdFading(context.Background(), []string{"-networks", "1", "-links", "15"})
	})
	if !strings.Contains(out, "Rayleigh (paper's model)") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestCmdTopologyTiny(t *testing.T) {
	out := captureStdout(t, func() error {
		return cmdTopology(context.Background(), []string{"-side", "3", "-format", "csv"})
	})
	if !strings.Contains(out, "grid/non-fading_mean") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestCmdBaselineTiny(t *testing.T) {
	out := captureStdout(t, func() error {
		return cmdBaseline(context.Background(), []string{"-networks", "2", "-links", "30"})
	})
	for _, want := range []string{"graph independent set", "SINR violations", "rayleigh replay"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestCmdShannonTiny(t *testing.T) {
	out := captureStdout(t, func() error {
		return cmdShannon(context.Background(), []string{"-networks", "1", "-links", "15", "-format", "csv"})
	})
	if !strings.Contains(out, "shannon/rayleigh_mean") {
		t.Fatalf("output:\n%s", out)
	}
}
