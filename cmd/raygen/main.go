// Command raygen generates wireless-network workloads and writes them as
// JSON (the netio format), so experiments can run repeatedly against frozen
// topologies and users can inspect or hand-edit instances before feeding
// them to raysched via -input.
//
// Topology kinds:
//
//	uniform   receivers uniform over the area (the paper's generator)
//	poisson   receiver count from a Poisson point process of given intensity
//	cluster   Thomas-process-like clustered receivers
//	grid      deterministic rows×cols grid
//
// Examples:
//
//	raygen -kind uniform -n 100 -o net.json
//	raygen -kind poisson -intensity 1e-4 -o net.json
//	raygen -kind cluster -clusters 5 -perchild 20 -spread 30 -o net.json
//	raygen -kind grid -rows 10 -cols 10 -spacing 100 -linklen 30 -o net.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rayfade/internal/geom"
	"rayfade/internal/netio"
	"rayfade/internal/network"
	"rayfade/internal/rng"
	"rayfade/internal/version"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "raygen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout *os.File) error {
	fs := flag.NewFlagSet("raygen", flag.ContinueOnError)
	kind := fs.String("kind", "uniform", "topology: uniform, poisson, cluster, grid")
	n := fs.Int("n", 100, "links (uniform)")
	side := fs.Float64("side", 1000, "square deployment side")
	dmin := fs.Float64("dmin", 20, "minimum link length")
	dmax := fs.Float64("dmax", 40, "maximum link length")
	alpha := fs.Float64("alpha", 2.2, "path-loss exponent")
	noise := fs.Float64("noise", 4e-7, "ambient noise")
	power := fs.String("power", "uniform:2", "power assignment: uniform:P, sqrt:S, linear:S")
	intensity := fs.Float64("intensity", 1e-4, "Poisson intensity (links per unit area)")
	clusters := fs.Int("clusters", 5, "cluster count (cluster)")
	perChild := fs.Int("perchild", 20, "receivers per cluster (cluster)")
	spread := fs.Float64("spread", 30, "cluster spread (cluster)")
	rows := fs.Int("rows", 10, "grid rows")
	cols := fs.Int("cols", 10, "grid cols")
	spacing := fs.Float64("spacing", 100, "grid spacing")
	linkLen := fs.Float64("linklen", 30, "grid link length")
	seed := fs.Uint64("seed", 1, "generator seed")
	out := fs.String("o", "", "output file (default stdout)")
	showVersion := fs.Bool("version", false, "print version and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVersion {
		fmt.Fprintf(stdout, "raygen %s\n", version.Version)
		return nil
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q (raygen takes flags only)", fs.Arg(0))
	}

	pa, err := parsePower(*power, *alpha)
	if err != nil {
		return err
	}
	src := rng.New(*seed)
	base := network.Config{
		N:     *n,
		Area:  geom.Square(*side),
		DMin:  *dmin,
		DMax:  *dmax,
		Alpha: *alpha,
		Noise: *noise,
		Power: pa,
	}

	var net *network.Network
	switch *kind {
	case "uniform":
		net, err = network.Random(base, src)
	case "poisson":
		net, err = network.RandomPoisson(base, *intensity, src)
	case "cluster":
		net, err = network.RandomClustered(network.ClusterConfig{
			Clusters: *clusters,
			PerChild: *perChild,
			Spread:   *spread,
			Base:     base,
		}, src)
	case "grid":
		net, err = network.Grid(*rows, *cols, *spacing, *linkLen, *alpha, *noise, pa)
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		return err
	}

	if *out == "" {
		return netio.Save(stdout, net)
	}
	if err := netio.SaveFile(*out, net); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "raygen: wrote %d links to %s\n", net.N(), *out)
	return nil
}

// parsePower interprets "uniform:P", "sqrt:S", "linear:S".
func parsePower(s string, alpha float64) (network.PowerAssignment, error) {
	parts := strings.SplitN(s, ":", 2)
	if len(parts) != 2 {
		return nil, fmt.Errorf("power %q: want kind:value", s)
	}
	var v float64
	if _, err := fmt.Sscanf(parts[1], "%g", &v); err != nil {
		return nil, fmt.Errorf("power %q: bad value: %v", s, err)
	}
	if v <= 0 {
		return nil, fmt.Errorf("power %q: value must be positive", s)
	}
	switch parts[0] {
	case "uniform":
		return network.UniformPower{P: v}, nil
	case "sqrt":
		return network.SquareRootPower{Scale: v, Alpha: alpha}, nil
	case "linear":
		return network.LinearPower{Scale: v, Alpha: alpha}, nil
	default:
		return nil, fmt.Errorf("power %q: unknown kind", s)
	}
}
