package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rayfade/internal/netio"
	"rayfade/internal/network"
	"rayfade/internal/version"
)

func TestRunKinds(t *testing.T) {
	dir := t.TempDir()
	cases := map[string][]string{
		"uniform": {"-kind", "uniform", "-n", "20"},
		"poisson": {"-kind", "poisson", "-intensity", "2e-5"},
		"cluster": {"-kind", "cluster", "-clusters", "3", "-perchild", "5"},
		"grid":    {"-kind", "grid", "-rows", "3", "-cols", "4"},
	}
	for name, args := range cases {
		path := filepath.Join(dir, name+".json")
		if err := run(append(args, "-o", path), os.Stdout); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		net, err := netio.LoadFile(path)
		if err != nil {
			t.Fatalf("%s: load: %v", name, err)
		}
		if err := net.Validate(); err != nil {
			t.Fatalf("%s: invalid: %v", name, err)
		}
	}
	// Grid with the given dimensions has exactly rows×cols links.
	net, err := netio.LoadFile(filepath.Join(dir, "grid.json"))
	if err != nil {
		t.Fatal(err)
	}
	if net.N() != 12 {
		t.Fatalf("grid links = %d, want 12", net.N())
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a.json"), filepath.Join(dir, "b.json")
	if err := run([]string{"-n", "10", "-seed", "5", "-o", a}, os.Stdout); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-n", "10", "-seed", "5", "-o", b}, os.Stdout); err != nil {
		t.Fatal(err)
	}
	ra, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(ra) != string(rb) {
		t.Fatal("same seed produced different files")
	}
}

func TestRunPowerAssignments(t *testing.T) {
	dir := t.TempDir()
	for _, p := range []string{"uniform:2", "sqrt:2", "linear:0.5"} {
		path := filepath.Join(dir, "p.json")
		if err := run([]string{"-n", "5", "-power", p, "-o", path}, os.Stdout); err != nil {
			t.Fatalf("power %s: %v", p, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	for name, args := range map[string][]string{
		"bad kind":        {"-kind", "mesh"},
		"bad power":       {"-power", "nonsense"},
		"bad power value": {"-power", "uniform:-1"},
		"bad power fmt":   {"-power", "uniform:abc"},
		"bad config":      {"-n", "0"},
	} {
		if err := run(args, os.Stdout); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestParsePower(t *testing.T) {
	pa, err := parsePower("sqrt:3", 2.2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := pa.(network.SquareRootPower); !ok {
		t.Fatalf("got %T", pa)
	}
}

func TestRunVersionAndArgs(t *testing.T) {
	// -version prints the release identifier and generates nothing.
	f, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := run([]string{"-version"}, f); err != nil {
		t.Fatal(err)
	}
	out, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "raygen "+version.Version) {
		t.Fatalf("version output: %q", out)
	}
	// Positional arguments are a usage error, not silently ignored.
	if err := run([]string{"extra"}, os.Stdout); err == nil {
		t.Fatal("positional argument accepted")
	}
}
