module rayfade

go 1.22
