package rayfade

import (
	"math"
	"testing"

	"rayfade/internal/fading"
	"rayfade/internal/geom"
)

func scenario(t testing.TB, links int, seed uint64) *Scenario {
	t.Helper()
	cfg := Figure1Workload()
	cfg.N = links
	scn, err := NewScenario(cfg, 2.5, seed)
	if err != nil {
		t.Fatal(err)
	}
	return scn
}

func TestNewScenarioValidation(t *testing.T) {
	cfg := Figure1Workload()
	if _, err := NewScenario(cfg, 0, 1); err == nil {
		t.Fatal("β=0 accepted")
	}
	cfg.N = 0
	if _, err := NewScenario(cfg, 2.5, 1); err == nil {
		t.Fatal("empty workload accepted")
	}
}

func TestScenarioBasics(t *testing.T) {
	scn := scenario(t, 30, 1)
	if scn.N() != 30 || scn.Beta() != 2.5 {
		t.Fatalf("N=%d β=%g", scn.N(), scn.Beta())
	}
	if scn.Network() == nil {
		t.Fatal("nil network")
	}
}

func TestGreedyCapacityFeasible(t *testing.T) {
	scn := scenario(t, 60, 2)
	set := scn.GreedyCapacity()
	if len(set) == 0 {
		t.Fatal("empty greedy set")
	}
	if !scn.Feasible(set) {
		t.Fatal("greedy set infeasible")
	}
	sinrs := scn.NonFadingSINRs(set)
	for _, i := range set {
		if sinrs[i] < 2.5 {
			t.Fatalf("link %d SINR %g below threshold", i, sinrs[i])
		}
	}
}

func TestOptimumDominatesGreedy(t *testing.T) {
	scn := scenario(t, 50, 3)
	greedy := scn.GreedyCapacity()
	optSet := scn.OptimumEstimate()
	if len(optSet) < len(greedy) {
		t.Fatalf("optimum estimate %d below greedy %d", len(optSet), len(greedy))
	}
	if !scn.Feasible(optSet) {
		t.Fatal("optimum estimate infeasible")
	}
}

func TestExactOptimumSmall(t *testing.T) {
	scn := scenario(t, 12, 4)
	exact := scn.ExactOptimum()
	if !scn.Feasible(exact) {
		t.Fatal("exact optimum infeasible")
	}
	if len(exact) < len(scn.GreedyCapacity()) {
		t.Fatal("exact optimum below greedy")
	}
}

func TestTransferGuaranteeHolds(t *testing.T) {
	scn := scenario(t, 40, 5)
	set := scn.GreedyCapacity()
	rep := scn.TransferToRayleigh(set)
	if rep.NonFadingValue != float64(len(set)) {
		t.Fatalf("non-fading value %g for feasible set of %d", rep.NonFadingValue, len(set))
	}
	exp := scn.ExpectedRayleighSuccesses(set)
	if exp < rep.GuaranteedValue-1e-9 {
		t.Fatalf("expected Rayleigh value %g below Lemma-2 floor %g", exp, rep.GuaranteedValue)
	}
	if exp > rep.NonFadingValue {
		t.Fatalf("expected Rayleigh value %g exceeds set size %g", exp, rep.NonFadingValue)
	}
}

func TestRayleighProbabilityAndBounds(t *testing.T) {
	scn := scenario(t, 25, 6)
	q := scn.UniformProbs(0.5)
	for i := 0; i < scn.N(); i++ {
		p := scn.RayleighSuccessProbability(q, i)
		lo, hi := scn.RayleighSuccessBounds(q, i)
		if lo > p+1e-12 || p > hi+1e-12 {
			t.Fatalf("link %d: bounds [%g,%g] do not bracket %g", i, lo, hi, p)
		}
	}
}

func TestSampleRayleighSuccesses(t *testing.T) {
	scn := scenario(t, 20, 7)
	set := scn.GreedyCapacity()
	succ := scn.SampleRayleighSuccesses(set)
	inSet := map[int]bool{}
	for _, i := range set {
		inSet[i] = true
	}
	for _, i := range succ {
		if !inSet[i] {
			t.Fatalf("non-transmitting link %d succeeded", i)
		}
	}
}

func TestExpectedUtilityMCAgreesWithExact(t *testing.T) {
	scn := scenario(t, 15, 8)
	set := scn.GreedyCapacity()
	q := make([]float64, scn.N())
	for _, i := range set {
		q[i] = 1
	}
	mc := scn.ExpectedUtilityMC(q, BinaryUtility{Beta: scn.Beta()}, 40000)
	exact := scn.ExpectedRayleighSuccesses(set)
	if math.Abs(mc.Mean-exact) > 5*mc.StdErr+0.05 {
		t.Fatalf("MC %g ± %g vs exact %g", mc.Mean, mc.StdErr, exact)
	}
}

func TestSimulationScheduleAndBestStep(t *testing.T) {
	scn := scenario(t, 30, 9)
	q := scn.UniformProbs(0.7)
	steps := scn.SimulationSchedule(q)
	if len(steps) == 0 {
		t.Fatal("empty schedule")
	}
	best := scn.BestSimulationStep(q, 100)
	if best.Value.Mean < 0 {
		t.Fatalf("best step value %g", best.Value.Mean)
	}
	if len(best.Step.Probs) != scn.N() {
		t.Fatal("best step has wrong width")
	}
}

func TestLatencyPipeline(t *testing.T) {
	scn := scenario(t, 40, 10)
	slots, err := scn.RepeatedCapacitySchedule()
	if err != nil {
		t.Fatal(err)
	}
	covered := map[int]bool{}
	for _, slot := range slots {
		if !scn.Feasible(slot) {
			t.Fatal("slot infeasible")
		}
		for _, i := range slot {
			covered[i] = true
		}
	}
	if len(covered) != scn.N() {
		t.Fatalf("schedule covers %d of %d links", len(covered), scn.N())
	}
	used, done := scn.PlayScheduleRayleigh(slots, 200)
	if !done {
		t.Fatalf("Rayleigh replay incomplete after %d slots", used)
	}
}

func TestAlohaBothModels(t *testing.T) {
	scn := scenario(t, 30, 11)
	nf := scn.Aloha(0.1, false)
	if !nf.Done {
		t.Fatal("non-fading ALOHA incomplete")
	}
	rl := scn.Aloha(0.1, true)
	if !rl.Done {
		t.Fatal("Rayleigh ALOHA incomplete")
	}
}

func TestRegretLearningRuns(t *testing.T) {
	scn := scenario(t, 40, 12)
	for _, rayleigh := range []bool{false, true} {
		h := scn.RunRegretLearning(120, rayleigh)
		if len(h.Rounds) != 120 {
			t.Fatalf("rounds = %d", len(h.Rounds))
		}
		if reg := h.MaxAverageRegret(); reg > 0.5 {
			t.Fatalf("rayleigh=%v: regret %g too high", rayleigh, reg)
		}
	}
}

func TestFromNetworkRejectsInvalid(t *testing.T) {
	bad := &Network{}
	if _, err := FromNetwork(bad, 2.5, 1); err == nil {
		t.Fatal("invalid network accepted")
	}
}

func TestFromNetworkCustomTopology(t *testing.T) {
	net := &Network{
		Links: []Link{
			{Sender: geom.Point{X: 0, Y: 0}, Receiver: geom.Point{X: 5, Y: 0}, Power: 2, Weight: 1},
			{Sender: geom.Point{X: 100, Y: 0}, Receiver: geom.Point{X: 105, Y: 0}, Power: 2, Weight: 1},
		},
		Metric: geom.Euclidean{},
		Alpha:  2.2,
		Noise:  1e-7,
	}
	scn, err := FromNetwork(net, 2.5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !scn.Feasible([]int{0, 1}) {
		t.Fatal("two far-apart links should be feasible")
	}
}

func TestScenarioWithoutSourcePanicsOnStochasticOps(t *testing.T) {
	net := scenario(t, 10, 13).Network()
	scn, err := fromNetwork(net, 2.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("stochastic op without source did not panic")
			}
		}()
		scn.SampleRayleighSuccesses([]int{0})
	}()
	scn.Reseed(99)
	scn.SampleRayleighSuccesses([]int{0}) // must not panic now
}

func TestWorkloadsMatchPaper(t *testing.T) {
	f1 := Figure1Workload()
	if f1.N != 100 || f1.Alpha != 2.2 {
		t.Fatalf("Figure1Workload = %+v", f1)
	}
	f2 := Figure2Workload()
	if f2.N != 200 || f2.Noise != 0 {
		t.Fatalf("Figure2Workload = %+v", f2)
	}
}

func TestRunBanditLearning(t *testing.T) {
	scn := scenario(t, 30, 15)
	h := scn.RunBanditLearning(150, true, 0.1)
	if len(h.Rounds) != 150 {
		t.Fatalf("rounds = %d", len(h.Rounds))
	}
	if avg := h.AverageSuccesses(50); avg <= 0 {
		t.Fatalf("bandit converged throughput %g", avg)
	}
}

func TestWeightedCapacity(t *testing.T) {
	scn := scenario(t, 40, 16)
	set, value := scn.WeightedCapacity()
	if len(set) == 0 || value != float64(len(set)) { // unit weights by default
		t.Fatalf("set %d, value %g", len(set), value)
	}
	if !scn.Feasible(set) {
		t.Fatal("weighted set infeasible")
	}
}

func TestSampleFadingSuccessesNakagami(t *testing.T) {
	scn := scenario(t, 25, 17)
	set := scn.GreedyCapacity()
	// Milder fading (high m) should not make a feasible set fail
	// catastrophically; run a few draws and require a majority success.
	total, draws := 0, 20
	for d := 0; d < draws; d++ {
		total += len(scn.SampleFadingSuccesses(set, fading.NakagamiGains{M: 16}))
	}
	if float64(total)/float64(draws) < 0.7*float64(len(set)) {
		t.Fatalf("Nakagami m=16 success average %.1f of %d", float64(total)/float64(draws), len(set))
	}
}

func TestNashEquilibriumFacade(t *testing.T) {
	cfg := Figure2Workload()
	cfg.N = 50
	scn, err := NewScenario(cfg, 0.5, 23)
	if err != nil {
		t.Fatal(err)
	}
	res := scn.NashEquilibrium()
	if !res.Converged {
		t.Skip("dynamics cycled on this instance")
	}
	if res.Senders <= 0 || res.ExpectedSuccesses <= 0 {
		t.Fatalf("degenerate equilibrium: %+v", res)
	}
}

func TestSaveAndLoadScenario(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/net.json"
	orig := scenario(t, 20, 21)
	if err := orig.SaveNetwork(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadScenario(path, 2.5, 21)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.N() != orig.N() {
		t.Fatalf("N = %d, want %d", loaded.N(), orig.N())
	}
	// Deterministic algorithms agree on the round-tripped instance.
	a, b := orig.GreedyCapacity(), loaded.GreedyCapacity()
	if len(a) != len(b) {
		t.Fatalf("greedy differs after round trip: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("greedy sets differ after round trip")
		}
	}
	if _, err := LoadScenario(dir+"/missing.json", 2.5, 1); err == nil {
		t.Fatal("missing file accepted")
	}
	if _, err := LoadScenario(path, 0, 1); err == nil {
		t.Fatal("β=0 accepted")
	}
}

func TestConflictGraphCapacity(t *testing.T) {
	scn := scenario(t, 80, 19)
	claimed, valid := scn.ConflictGraphCapacity(0.5)
	if len(claimed) == 0 {
		t.Fatal("empty claimed set")
	}
	if len(valid) > len(claimed) {
		t.Fatal("more valid than claimed")
	}
	inClaimed := map[int]bool{}
	for _, i := range claimed {
		inClaimed[i] = true
	}
	for _, i := range valid {
		if !inClaimed[i] {
			t.Fatalf("valid link %d not in claimed set", i)
		}
	}
	// The valid subset transmitting alongside the full claimed set meets β
	// by construction of the check (valid links measured within claimed).
	if len(valid) == 0 {
		t.Fatal("no valid links at all — conflict graph useless on this workload")
	}
}

func TestShannonRateFacade(t *testing.T) {
	scn := scenario(t, 12, 18)
	q := scn.UniformProbs(0.5)
	total, err := scn.TotalShannonRate(q)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for i := 0; i < scn.N(); i++ {
		v, err := scn.ExpectedShannonRate(q, i)
		if err != nil {
			t.Fatal(err)
		}
		sum += v
	}
	if math.Abs(total-sum) > 1e-6*(1+total) {
		t.Fatalf("total %g vs per-link sum %g", total, sum)
	}
	// Cross-check against Monte Carlo through the same facade.
	mc := scn.ExpectedUtilityMC(q, ShannonUtility{}, 40000)
	if math.Abs(mc.Mean-total) > 5*mc.StdErr+0.02*total {
		t.Fatalf("MC %g ± %g vs exact %g", mc.Mean, mc.StdErr, total)
	}
}

func TestPowerControlCapacity(t *testing.T) {
	scn := scenario(t, 40, 14)
	res := scn.PowerControlCapacity()
	if len(res.Set) < len(scn.GreedyCapacity()) {
		t.Fatal("power control below uniform greedy")
	}
}
