package rayfade_test

import (
	"fmt"
	"log"

	"rayfade"
)

// The basic workflow: build a scenario, solve it in the non-fading model,
// and carry the solution into the Rayleigh model with its guarantee.
func Example() {
	cfg := rayfade.Figure1Workload()
	cfg.N = 30
	scn, err := rayfade.NewScenario(cfg, 2.5, 7)
	if err != nil {
		log.Fatal(err)
	}
	set := scn.GreedyCapacity()
	rep := scn.TransferToRayleigh(set)
	fmt.Printf("selected %d links, feasible %v\n", len(set), scn.Feasible(set))
	fmt.Printf("guarantee %.2f ≤ exact %.2f ≤ size %d\n",
		rep.GuaranteedValue, scn.ExpectedRayleighSuccesses(set), len(set))
	// Output:
	// selected 20 links, feasible true
	// guarantee 7.36 ≤ exact 16.50 ≤ size 20
}

// Theorem 1's closed form answers probabilistic-access questions directly —
// no simulation needed.
func ExampleScenario_RayleighSuccessProbability() {
	cfg := rayfade.Figure1Workload()
	cfg.N = 10
	scn, err := rayfade.NewScenario(cfg, 2.5, 3)
	if err != nil {
		log.Fatal(err)
	}
	q := scn.UniformProbs(0.5)
	p := scn.RayleighSuccessProbability(q, 0)
	lo, hi := scn.RayleighSuccessBounds(q, 0)
	fmt.Printf("bracketed: %v\n", lo <= p && p <= hi)
	// Output:
	// bracketed: true
}

// The exact expected Shannon rate needs no sampling: Theorem 1's closed
// form under the layer-cake integral.
func ExampleScenario_TotalShannonRate() {
	cfg := rayfade.Figure1Workload()
	cfg.N = 8
	scn, err := rayfade.NewScenario(cfg, 2.5, 11)
	if err != nil {
		log.Fatal(err)
	}
	total, err := scn.TotalShannonRate(scn.UniformProbs(0.5))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("positive capacity: %v\n", total > 0)
	// Output:
	// positive capacity: true
}

// Latency minimization end to end: a non-fading schedule replayed under
// Rayleigh fading with the Section-4 repetition factor.
func ExampleScenario_RepeatedCapacitySchedule() {
	cfg := rayfade.Figure1Workload()
	cfg.N = 30
	scn, err := rayfade.NewScenario(cfg, 2.5, 13)
	if err != nil {
		log.Fatal(err)
	}
	slots, err := scn.RepeatedCapacitySchedule()
	if err != nil {
		log.Fatal(err)
	}
	_, done := scn.PlayScheduleRayleigh(slots, 200)
	fmt.Printf("schedule of %d slots, rayleigh replay done: %v\n", len(slots), done)
	// Output:
	// schedule of 3 slots, rayleigh replay done: true
}

// Algorithm 1 compresses any Rayleigh probability assignment into a handful
// of non-fading levels — O(log* n) of them.
func ExampleScenario_SimulationSchedule() {
	cfg := rayfade.Figure1Workload()
	cfg.N = 100
	scn, err := rayfade.NewScenario(cfg, 2.5, 5)
	if err != nil {
		log.Fatal(err)
	}
	steps := scn.SimulationSchedule(scn.UniformProbs(0.9))
	fmt.Printf("%d levels simulate 100 links\n", len(steps))
	fmt.Printf("level 0 scales by 4·b₀ = %g\n", 4*steps[0].B)
	// Output:
	// 7 levels simulate 100 links
	// level 0 scales by 4·b₀ = 1
}
