#!/usr/bin/env bash
# Cluster smoke: three local rayschedd workers, one SIGKILL'd mid-run. The
# coordinator must reassign the killed worker's shards and the merged CSV
# must be byte-identical to a single-node run — verified with cmp, no
# tolerance. Used by `make cluster` and the ci cluster-smoke job.
set -euo pipefail
cd "$(dirname "$0")/.."

dir=$(mktemp -d)
cleanup() {
  # shellcheck disable=SC2046  # word-splitting is the point: one PID per arg
  kill $(jobs -p) 2>/dev/null || true
  rm -rf "$dir"
}
trap cleanup EXIT

go build -o "$dir/rayschedd" ./cmd/rayschedd
go build -o "$dir/raysched" ./cmd/raysched
go build -o "$dir/raybench" ./cmd/raybench

params=(-networks 6 -links 16 -txseeds 2 -fadeseeds 2 -points 3 -seed 7)
urls=http://127.0.0.1:18081,http://127.0.0.1:18082,http://127.0.0.1:18083

# Worker 1 is armed with replication delay faults (3s per replication, every
# replication) so it is reliably still computing its first shard when the
# SIGKILL lands.
"$dir/rayschedd" -addr 127.0.0.1:18081 -log-level off \
  -faults "seed=1,sim.replication=delay:1:3s" & w1=$!
"$dir/rayschedd" -addr 127.0.0.1:18082 -log-level off &
"$dir/rayschedd" -addr 127.0.0.1:18083 -log-level off &

# Wait until every worker accepts connections (pure-bash TCP probe).
for port in 18081 18082 18083; do
  for _ in $(seq 1 100); do
    if (exec 3<>"/dev/tcp/127.0.0.1/$port") 2>/dev/null; then
      exec 3>&- 3<&-
      break
    fi
    sleep 0.1
  done
done

"$dir/raysched" figure1 "${params[@]}" -out "$dir/single.csv"

# Kill worker 1 one second into the distributed run — mid-shard, since its
# first replication alone takes 3s. Its leased shard must be reassigned.
# Hedging is disabled for this phase: it would speculatively rescue the stuck
# shard long before the lease expires, and this phase exists to prove the
# lease-reassignment path. (Hedging has its own -race unit tests.)
( sleep 1; kill -9 "$w1" 2>/dev/null || true ) &

"$dir/raysched" cluster "${params[@]}" \
  -workers "$urls" \
  -shard-size 1 -lease 5s -max-attempts 30 -hedge=-1s \
  -trace "$dir/cluster.trace.json" \
  -out "$dir/cluster.csv" 2> "$dir/cluster.log"
cat "$dir/cluster.log" >&2

# The kill must have actually cost the coordinator a shard: a run that shows
# zero reassignments finished before the chaos landed and proves nothing.
if grep -q ' 0 reassigned,' "$dir/cluster.log"; then
  echo "cluster-smoke: FAIL — the killed worker never lost a shard" >&2
  exit 1
fi

cmp "$dir/single.csv" "$dir/cluster.csv"
echo "cluster-smoke: merged output byte-identical to single-node run (one worker killed mid-shard)"

# The merged trace must be a valid Chrome trace with nested spans from at
# least three processes: the coordinator plus both surviving workers. (The
# killed worker's spans died with it — that's expected, not tolerated-missing.)
"$dir/raybench" tracecheck -nested -min-procs 3 "$dir/cluster.trace.json"

# Keep the merged trace as a CI artifact when the workflow asks for it.
if [[ -n "${CLUSTER_TRACE_OUT:-}" ]]; then
  cp "$dir/cluster.trace.json" "$CLUSTER_TRACE_OUT"
fi

# One-shot aggregated telemetry across the survivors: both live workers must
# show up in the scrape, and the killed one must be reported unreachable
# without failing the command.
"$dir/raysched" cluster -status -workers "$urls" > "$dir/status.txt"
cat "$dir/status.txt"
grep -q 'cluster: 2/3 workers live' "$dir/status.txt"
grep -q '18082' "$dir/status.txt"
grep -q '18083' "$dir/status.txt"
echo "cluster-smoke: merged trace validated (3+ processes) and -status sees both survivors"

# ---------------------------------------------------------------------------
# Phase 2: kill the COORDINATOR mid-run, then resume from its shard journal.
# The survivors (18082, 18083) serve both runs. Armed client.latency faults
# slow every dispatch by 1s so the SIGKILL reliably lands mid-run; the
# journal directory is the only state that survives the kill.
survivors=http://127.0.0.1:18082,http://127.0.0.1:18083
jdir="${CLUSTER_JOURNAL_DIR:-$dir/journal}"
mkdir -p "$jdir"

"$dir/raysched" cluster "${params[@]}" \
  -workers "$survivors" \
  -shard-size 1 -lease 10s -max-attempts 30 \
  -journal "$jdir" \
  -faults "seed=3,client.latency=delay:1:1s" \
  -out "$dir/killed.csv" 2> "$dir/killed.log" & cpid=$!

# Wait until at least two shards have landed in the journal, then SIGKILL
# the coordinator — no drain, no goodbye, exactly like an OOM kill.
for _ in $(seq 1 200); do
  n=$(find "$jdir" -name '*.shard' 2>/dev/null | wc -l)
  [[ "$n" -ge 2 ]] && break
  sleep 0.1
done
kill -9 "$cpid" 2>/dev/null || true
if wait "$cpid" 2>/dev/null; then
  echo "cluster-smoke: FAIL — coordinator finished before the SIGKILL landed" >&2
  exit 1
fi
cat "$dir/killed.log" >&2 || true

n=$(find "$jdir" -name '*.shard' | wc -l)
if [[ "$n" -lt 1 || "$n" -gt 5 ]]; then
  echo "cluster-smoke: FAIL — journal holds $n shards after the kill; a resume from it proves nothing (want 1..5 of 6)" >&2
  exit 1
fi
echo "cluster-smoke: coordinator SIGKILL'd with $n/6 shards journaled"

# Resume: same run identity, same journal, faults disarmed. Only the
# uncovered ranges may be re-dispatched, and the merged output must still be
# byte-identical to the single-node run.
"$dir/raysched" cluster "${params[@]}" \
  -workers "$survivors" \
  -shard-size 1 -lease 10s -max-attempts 30 \
  -journal "$jdir" \
  -out "$dir/resumed.csv" 2> "$dir/resumed.log"
cat "$dir/resumed.log" >&2

if ! grep -Eq '\([1-9][0-9]* resumed from journal\)' "$dir/resumed.log"; then
  echo "cluster-smoke: FAIL — the resumed run restored nothing from the journal" >&2
  exit 1
fi
cmp "$dir/single.csv" "$dir/resumed.csv"
echo "cluster-smoke: resume after coordinator SIGKILL byte-identical to single-node run"
