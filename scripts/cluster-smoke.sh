#!/usr/bin/env bash
# Cluster smoke: three local rayschedd workers, one SIGKILL'd mid-run. The
# coordinator must reassign the killed worker's shards and the merged CSV
# must be byte-identical to a single-node run — verified with cmp, no
# tolerance. Used by `make cluster` and the ci cluster-smoke job.
set -euo pipefail
cd "$(dirname "$0")/.."

dir=$(mktemp -d)
cleanup() {
  # shellcheck disable=SC2046  # word-splitting is the point: one PID per arg
  kill $(jobs -p) 2>/dev/null || true
  rm -rf "$dir"
}
trap cleanup EXIT

go build -o "$dir/rayschedd" ./cmd/rayschedd
go build -o "$dir/raysched" ./cmd/raysched
go build -o "$dir/raybench" ./cmd/raybench

params=(-networks 6 -links 16 -txseeds 2 -fadeseeds 2 -points 3 -seed 7)
urls=http://127.0.0.1:18081,http://127.0.0.1:18082,http://127.0.0.1:18083

# Worker 1 is armed with replication delay faults (3s per replication, every
# replication) so it is reliably still computing its first shard when the
# SIGKILL lands.
"$dir/rayschedd" -addr 127.0.0.1:18081 -log-level off \
  -faults "seed=1,sim.replication=delay:1:3s" & w1=$!
"$dir/rayschedd" -addr 127.0.0.1:18082 -log-level off &
"$dir/rayschedd" -addr 127.0.0.1:18083 -log-level off &

# Wait until every worker accepts connections (pure-bash TCP probe).
for port in 18081 18082 18083; do
  for _ in $(seq 1 100); do
    if (exec 3<>"/dev/tcp/127.0.0.1/$port") 2>/dev/null; then
      exec 3>&- 3<&-
      break
    fi
    sleep 0.1
  done
done

"$dir/raysched" figure1 "${params[@]}" -out "$dir/single.csv"

# Kill worker 1 one second into the distributed run — mid-shard, since its
# first replication alone takes 3s. Its leased shard must be reassigned.
( sleep 1; kill -9 "$w1" 2>/dev/null || true ) &

"$dir/raysched" cluster "${params[@]}" \
  -workers "$urls" \
  -shard-size 1 -lease 5s -max-attempts 30 \
  -trace "$dir/cluster.trace.json" \
  -out "$dir/cluster.csv" 2> "$dir/cluster.log"
cat "$dir/cluster.log" >&2

# The kill must have actually cost the coordinator a shard: a run that shows
# zero reassignments finished before the chaos landed and proves nothing.
if grep -q ' 0 reassigned,' "$dir/cluster.log"; then
  echo "cluster-smoke: FAIL — the killed worker never lost a shard" >&2
  exit 1
fi

cmp "$dir/single.csv" "$dir/cluster.csv"
echo "cluster-smoke: merged output byte-identical to single-node run (one worker killed mid-shard)"

# The merged trace must be a valid Chrome trace with nested spans from at
# least three processes: the coordinator plus both surviving workers. (The
# killed worker's spans died with it — that's expected, not tolerated-missing.)
"$dir/raybench" tracecheck -nested -min-procs 3 "$dir/cluster.trace.json"

# Keep the merged trace as a CI artifact when the workflow asks for it.
if [[ -n "${CLUSTER_TRACE_OUT:-}" ]]; then
  cp "$dir/cluster.trace.json" "$CLUSTER_TRACE_OUT"
fi

# One-shot aggregated telemetry across the survivors: both live workers must
# show up in the scrape, and the killed one must be reported unreachable
# without failing the command.
"$dir/raysched" cluster -status -workers "$urls" > "$dir/status.txt"
cat "$dir/status.txt"
grep -q 'cluster: 2/3 workers live' "$dir/status.txt"
grep -q '18082' "$dir/status.txt"
grep -q '18083' "$dir/status.txt"
echo "cluster-smoke: merged trace validated (3+ processes) and -status sees both survivors"
