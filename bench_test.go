package rayfade

// One benchmark per reproduced experiment (DESIGN.md per-experiment index),
// plus the ablation benches DESIGN.md calls out. Benchmarks run scaled-down
// workloads per iteration so `go test -bench=.` completes quickly; the full
// paper-scale runs live behind `cmd/raysched` and EXPERIMENTS.md. Where a
// benchmark's value (not just its speed) matters, the per-iteration result
// is published with b.ReportMetric so bench output doubles as a sanity
// record of the reproduced shapes.

import (
	"testing"

	"rayfade/internal/capacity"
	"rayfade/internal/fading"
	"rayfade/internal/graphsched"
	"rayfade/internal/latency"
	"rayfade/internal/network"
	"rayfade/internal/opt"
	"rayfade/internal/regret"
	"rayfade/internal/rng"
	"rayfade/internal/sim"
	"rayfade/internal/sinr"
	"rayfade/internal/transform"
	"rayfade/internal/utility"
)

// BenchmarkFigure1 regenerates a scaled-down Figure 1 per iteration: four
// success-vs-probability curves over {uniform, sqrt} × {non-fading,
// Rayleigh}. Reported metric: Rayleigh/uniform successes at q = 1 (the
// region where fading beats the deterministic model).
func BenchmarkFigure1(b *testing.B) {
	cfg := sim.Figure1Config{
		Networks:      4,
		Links:         100,
		TransmitSeeds: 5,
		FadingSeeds:   3,
		Probs:         []float64{0.1, 0.25, 0.5, 0.75, 1.0},
		Seed:          1,
		Workers:       1,
	}
	var lastAtFull float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := sim.RunFigure1(cfg)
		means := res.Curves[sim.CurveUniformRayleigh].Means()
		lastAtFull = means[len(means)-1]
	}
	b.ReportMetric(lastAtFull, "rayleigh_succ_at_q1")
}

// BenchmarkFigure2 regenerates a scaled-down Figure 2 per iteration: RWM
// learning curves in both models. Reported metric: converged non-fading
// throughput.
func BenchmarkFigure2(b *testing.B) {
	cfg := sim.Figure2Config{
		Networks: 2,
		Links:    100,
		Rounds:   60,
		Seed:     2,
		Workers:  1,
	}
	var converged float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := sim.RunFigure2(cfg)
		converged = res.ConvergedNF.Mean()
	}
	b.ReportMetric(converged, "converged_successes")
}

// BenchmarkOptimum regenerates the Section-7 in-text optimum reference
// (paper: 49.75 average on the Figure-1 workload) with a scaled-down search.
func BenchmarkOptimum(b *testing.B) {
	cfg := sim.OptimumConfig{
		Networks: 2,
		Links:    100,
		Search:   opt.LocalSearchConfig{Restarts: 3, SwapPasses: 10},
		Seed:     3,
		Workers:  1,
	}
	var mean float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mean = sim.RunOptimum(cfg).LocalSearch.Mean()
	}
	b.ReportMetric(mean, "optimum_estimate")
}

func benchMatrix(b *testing.B, seed uint64, n int) *network.Matrix {
	b.Helper()
	cfg := network.Figure1Config()
	cfg.N = n
	net, err := network.Random(cfg, rng.New(seed))
	if err != nil {
		b.Fatal(err)
	}
	return net.Gains()
}

// BenchmarkTheorem1 measures the closed-form success probability over all
// links of a 100-link instance (the Figure-1 primitive).
func BenchmarkTheorem1(b *testing.B) {
	m := benchMatrix(b, 1, 100)
	q := fading.UniformProbs(100, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fading.ExpectedSuccessesExact(m, q, 2.5)
	}
}

// BenchmarkLemma1Bounds evaluates both Lemma-1 bounds across all links.
func BenchmarkLemma1Bounds(b *testing.B) {
	m := benchMatrix(b, 1, 100)
	q := fading.UniformProbs(100, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for link := 0; link < m.N; link++ {
			fading.LowerBound(m, q, 2.5, link)
			fading.UpperBound(m, q, 2.5, link)
		}
	}
}

// BenchmarkLemma2Transfer transfers a greedy non-fading solution to the
// Rayleigh model and evaluates its exact expected value. Reported metric:
// realized retention E[Rayleigh]/non-fading (Lemma 2 guarantees ≥ 1/e).
func BenchmarkLemma2Transfer(b *testing.B) {
	cfg := network.Figure1Config()
	net, err := network.Random(cfg, rng.New(4))
	if err != nil {
		b.Fatal(err)
	}
	m := net.Gains()
	set := capacity.GreedyUniform(net, 2.5)
	var retention float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := transform.Transfer(m, set, utility.Uniform(utility.Binary{Beta: 2.5}))
		retention = transform.ExpectedFadingBinaryValue(m, set, 2.5) / rep.NonFadingValue
	}
	b.ReportMetric(retention, "retention")
}

// BenchmarkAlgorithm1 builds and evaluates the Theorem-2 simulation
// schedule (one Monte-Carlo pass per iteration).
func BenchmarkAlgorithm1(b *testing.B) {
	m := benchMatrix(b, 5, 100)
	q := fading.UniformProbs(100, 0.7)
	steps := transform.Schedule(q, transform.ScheduleRepeats)
	src := rng.New(6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		transform.RunScheduleOnce(m, steps, src)
	}
}

// BenchmarkLatencyRepeatedCapacity builds the full repeated-capacity
// schedule of a 100-link instance. Reported metric: schedule length.
func BenchmarkLatencyRepeatedCapacity(b *testing.B) {
	cfg := network.Figure1Config()
	net, err := network.Random(cfg, rng.New(7))
	if err != nil {
		b.Fatal(err)
	}
	m := net.Gains()
	capFn := latency.GreedyCapacity(capacity.LengthOrder(net), capacity.DefaultTau)
	var slots int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched, err := latency.RepeatedCapacity(m, 2.5, capFn)
		if err != nil {
			b.Fatal(err)
		}
		slots = len(sched)
	}
	b.ReportMetric(float64(slots), "slots")
}

// BenchmarkLatencyAlohaRayleigh runs the distributed protocol to completion
// under Rayleigh fading with the Section-4 repetition factor. Reported
// metric: slots to drain 100 links.
func BenchmarkLatencyAlohaRayleigh(b *testing.B) {
	m := benchMatrix(b, 8, 100)
	src := rng.New(9)
	var slots float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := latency.Aloha(m, 2.5,
			latency.AlohaConfig{Prob: 0.1, Repeats: transform.AlohaRepeats},
			src, latency.Rayleigh{Src: src})
		if !res.Done {
			b.Fatal("ALOHA run incomplete")
		}
		slots = float64(res.Slots)
	}
	b.ReportMetric(slots, "slots")
}

// BenchmarkRegretConvergence plays 60 RWM rounds on a 100-link Figure-2
// instance in the Rayleigh model. Reported metric: max average regret.
func BenchmarkRegretConvergence(b *testing.B) {
	cfg := network.Figure2Config()
	cfg.N = 100
	net, err := network.Random(cfg, rng.New(10))
	if err != nil {
		b.Fatal(err)
	}
	m := net.Gains()
	var reg float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := regret.NewGame(m, 0.5, regret.Rayleigh, rng.New(uint64(i)+11)).Run(60)
		reg = h.MaxAverageRegret()
	}
	b.ReportMetric(reg, "avg_regret")
}

// BenchmarkShannonExact evaluates the exact expected Shannon capacity of a
// 60-link instance at q = 0.5 by quadrature over the Theorem-1 closed form.
// Reported metric: total capacity in nats.
func BenchmarkShannonExact(b *testing.B) {
	m := benchMatrix(b, 20, 60)
	q := fading.UniformProbs(60, 0.5)
	var total float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := fading.TotalShannonExact(m, q, 1e-7)
		if err != nil {
			b.Fatal(err)
		}
		total = v
	}
	b.ReportMetric(total, "nats")
}

// BenchmarkGraphBaseline builds the conflict graph and both graph-model
// schedules for a 100-link instance. Reported metric: fraction of the
// coloring's scheduled links that violate the true SINR constraint.
func BenchmarkGraphBaseline(b *testing.B) {
	m := benchMatrix(b, 21, 100)
	var violFrac float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := graphsched.FromMatrix(m, 2.5, graphsched.DefaultThreshold)
		ev := graphsched.EvaluateSchedule(m, g.Coloring(), 2.5)
		violFrac = float64(ev.Violations) / float64(ev.Scheduled)
	}
	b.ReportMetric(violFrac, "violation_frac")
}

// BenchmarkSignalPartition runs the signal-strengthening partition (the
// Lemma-7-adjacent machinery) on a 100-link instance. Reported metric:
// number of 2-signal parts.
func BenchmarkSignalPartition(b *testing.B) {
	m := benchMatrix(b, 22, 100)
	set := make([]int, m.N)
	for i := range set {
		set[i] = i
	}
	var parts int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ps, err := sinr.PartitionToSignal(m, set, 2.5, 2)
		if err != nil {
			b.Fatal(err)
		}
		parts = len(ps)
	}
	b.ReportMetric(float64(parts), "parts")
}

// BenchmarkSampleSINRsDense draws one Rayleigh SINR realization for a fully
// active 200-link instance through the allocation-free kernel. allocs/op must
// report 0 — the steady-state contract the experiment inner loops rely on.
func BenchmarkSampleSINRsDense(b *testing.B) {
	active := make([]bool, 200)
	for i := range active {
		active[i] = true
	}
	benchSampleSINRs(b, benchMatrix(b, 23, 200), active)
}

// BenchmarkSampleSINRsSparse is the same kernel at 10% activity, the regime
// near the Figure-1 peak where the active-index list skips most of the O(n²)
// matrix. allocs/op must report 0.
func BenchmarkSampleSINRsSparse(b *testing.B) {
	active := make([]bool, 200)
	for i := 0; i < len(active); i += 10 {
		active[i] = true
	}
	benchSampleSINRs(b, benchMatrix(b, 24, 200), active)
}

func benchSampleSINRs(b *testing.B, m *network.Matrix, active []bool) {
	b.Helper()
	vals := make([]float64, m.N)
	idx := make([]int, 0, m.N)
	src := rng.New(25)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fading.SampleSINRsInto(m, active, src, vals, idx)
	}
}

// --- Ablations (DESIGN.md "design choices called out for ablation") -----

// BenchmarkAblationGreedyTau compares the affectance budget τ of the greedy
// capacity algorithm. Reported metric: selected set size.
func BenchmarkAblationGreedyTau(b *testing.B) {
	cfg := network.Figure1Config()
	net, err := network.Random(cfg, rng.New(12))
	if err != nil {
		b.Fatal(err)
	}
	m := net.Gains()
	order := capacity.LengthOrder(net)
	for _, tau := range []float64{0.25, 0.5, 1.0} {
		b.Run(tauName(tau), func(b *testing.B) {
			var size int
			for i := 0; i < b.N; i++ {
				size = len(capacity.GreedyAffectance(m, 2.5, tau, order))
			}
			b.ReportMetric(float64(size), "set_size")
		})
	}
}

func tauName(tau float64) string {
	switch tau {
	case 0.25:
		return "tau=0.25"
	case 0.5:
		return "tau=0.50"
	default:
		return "tau=1.00"
	}
}

// BenchmarkAblationAlgorithm1Repeats varies the per-level repetition count
// of Algorithm 1 (paper: 19). Reported metric: simulated value captured.
func BenchmarkAblationAlgorithm1Repeats(b *testing.B) {
	m := benchMatrix(b, 13, 60)
	q := fading.UniformProbs(60, 0.8)
	us := utility.Uniform(utility.Binary{Beta: 2.5})
	for _, repeats := range []int{1, 4, 19} {
		name := map[int]string{1: "repeats=01", 4: "repeats=04", 19: "repeats=19"}[repeats]
		b.Run(name, func(b *testing.B) {
			steps := transform.Schedule(q, repeats)
			src := rng.New(14)
			var val float64
			for i := 0; i < b.N; i++ {
				val = transform.SimulationValueMC(m, steps, us, 20, src).Mean
			}
			b.ReportMetric(val, "sim_value")
		})
	}
}

// BenchmarkAblationAlohaRepeats varies the Section-4 repetition factor of
// the fading ALOHA (paper proves 4 suffices). Reported metric: slots.
func BenchmarkAblationAlohaRepeats(b *testing.B) {
	m := benchMatrix(b, 15, 80)
	for _, repeats := range []int{1, 2, 4, 8} {
		name := map[int]string{1: "repeats=1", 2: "repeats=2", 4: "repeats=4", 8: "repeats=8"}[repeats]
		b.Run(name, func(b *testing.B) {
			src := rng.New(16)
			var slots float64
			for i := 0; i < b.N; i++ {
				res := latency.Aloha(m, 2.5,
					latency.AlohaConfig{Prob: 0.1, Repeats: repeats, MaxSlots: 100000},
					src, latency.Rayleigh{Src: src})
				if res.Done {
					slots = float64(res.Slots)
				}
			}
			b.ReportMetric(slots, "slots")
		})
	}
}

// BenchmarkAblationMCSamples contrasts Monte-Carlo expected-success
// estimation against the closed form it approximates.
func BenchmarkAblationMCSamples(b *testing.B) {
	m := benchMatrix(b, 17, 60)
	q := fading.UniformProbs(60, 0.5)
	us := utility.Uniform(utility.Binary{Beta: 2.5})
	b.Run("closed-form", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fading.ExpectedSuccessesExact(m, q, 2.5)
		}
	})
	for _, samples := range []int{100, 1000} {
		name := map[int]string{100: "mc=100", 1000: "mc=1000"}[samples]
		b.Run(name, func(b *testing.B) {
			src := rng.New(18)
			for i := 0; i < b.N; i++ {
				fading.ExpectedUtilityMC(m, q, us, samples, src)
			}
		})
	}
}

// BenchmarkAblationParallel measures the replication runner sequentially
// vs with all cores on a Figure-1 slice.
func BenchmarkAblationParallel(b *testing.B) {
	cfg := sim.Figure1Config{
		Networks:      8,
		Links:         60,
		TransmitSeeds: 4,
		FadingSeeds:   2,
		Probs:         []float64{0.2, 0.5, 1.0},
		Seed:          19,
	}
	b.Run("workers=1", func(b *testing.B) {
		c := cfg
		c.Workers = 1
		for i := 0; i < b.N; i++ {
			sim.RunFigure1(c)
		}
	})
	b.Run("workers=all", func(b *testing.B) {
		c := cfg
		c.Workers = 0
		for i := 0; i < b.N; i++ {
			sim.RunFigure1(c)
		}
	})
}
