# Convenience targets for the rayfade reproduction.

GO ?= go
LABEL ?= local

.PHONY: all build vet test race bench bench-json bench-compare throughput lint golden golden-check trace-smoke chaos cluster cover figures results serve fuzz clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable benchmark run: writes BENCH_$(LABEL).json via the
# raybench harness (use LABEL=... to tag the run; add RAYBENCH_FLAGS=-quick
# for the smoke subset).
bench-json:
	$(GO) run ./cmd/raybench run -label $(LABEL) $(RAYBENCH_FLAGS)

# Compare a fresh quick run against the committed seed baseline
# (allocation metric: machine-independent, so it is meaningful anywhere).
bench-compare:
	$(GO) run ./cmd/raybench run -quick -label compare-tmp -out /tmp/BENCH_compare-tmp.json
	$(GO) run ./cmd/raybench compare -metric allocs -threshold 0.40 results/BENCH_seed.json /tmp/BENCH_compare-tmp.json

# Batched-path throughput gate (CI's throughput-smoke job): the NDJSON
# batch endpoint must serve at least 5x the per-request estimates/sec.
# Self-relative — both sides are measured here, moments apart — so the
# gate means the same thing on a laptop and in CI.
throughput:
	$(GO) run ./cmd/raybench throughput -min-ratio 5.0

# Formatting gate (CI's lint job also runs staticcheck + govulncheck,
# which need network to install; this target is the offline part).
lint:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...

# Regenerate the golden determinism manifest (after an intentional change
# to any experiment's fixed-seed output).
golden:
	$(GO) run ./cmd/raybench golden -out results/golden.json

# Verify every sim experiment still reproduces its recorded fixed-seed
# hash; exits non-zero on drift. The -trace pass re-verifies with a
# process-wide tracer installed (instrumentation must not perturb outputs).
golden-check:
	$(GO) run ./cmd/raybench golden -check
	$(GO) run ./cmd/raybench golden -check -trace

# Capture and validate a Chrome trace of a small Figure-1 run (open the
# resulting JSON at https://ui.perfetto.dev).
trace-smoke:
	$(GO) run ./cmd/raysched figure1 -networks 3 -links 12 -txseeds 2 -fadeseeds 2 -points 4 -trace /tmp/fig1.trace.json > /dev/null
	$(GO) run ./cmd/raybench tracecheck -nested /tmp/fig1.trace.json

# Chaos smoke: the fault-injection and crash-recovery suites under the race
# detector (injector determinism, daemon survival under the fault matrix,
# kill/resume byte identity, mid-replication cancellation), then a checkpoint
# resume exercised through the real CLI with replication faults armed.
chaos:
	$(GO) test -race ./internal/faults/ ./internal/fsio/ ./internal/client/ \
		-run . -count 1
	$(GO) test -race ./internal/sim/ -run 'Checkpoint|Cancel' -count 1
	$(GO) test -race ./internal/server/ -run 'Fault|Shed|PoolClose' -count 1
	$(GO) test -race ./cmd/raysched/ -run 'SIGKILL' -count 1
	rm -f /tmp/chaos-fig1.ckpt
	$(GO) run ./cmd/raysched figure1 -networks 4 -links 16 -txseeds 2 -fadeseeds 2 -points 3 \
		-checkpoint /tmp/chaos-fig1.ckpt -faults "seed=1,sim.replication=delay:0.5:10ms" > /dev/null
	$(GO) run ./cmd/raysched figure1 -networks 4 -links 16 -txseeds 2 -fadeseeds 2 -points 3 \
		-checkpoint /tmp/chaos-fig1.ckpt > /dev/null
	rm -f /tmp/chaos-fig1.ckpt

# Distributed smoke: three local rayschedd workers, one SIGKILL'd mid-shard;
# the coordinator must reassign the lost shard and the merged CSV must be
# byte-identical to a single-node run (cmp, no tolerance).
cluster:
	bash scripts/cluster-smoke.sh

cover:
	$(GO) test -cover ./...

# Regenerate the paper's figures as SVG plus the data tables in results/.
figures: build
	mkdir -p results
	$(GO) run ./cmd/raysched figure1 -format svg > results/figure1.svg
	$(GO) run ./cmd/raysched figure2 -format svg > results/figure2.svg
	$(GO) run ./cmd/raysched figure1 -format md  > results/figure1.md
	$(GO) run ./cmd/raysched figure2             > results/figure2.md

# Regenerate every recorded experiment output (takes several minutes).
results: figures
	$(GO) run ./cmd/raysched figure1 -format csv > results/figure1.csv
	$(GO) run ./cmd/raysched figure2 -format csv > results/figure2.csv
	$(GO) run ./cmd/raysched optimum             > results/optimum.txt
	$(GO) run ./cmd/raysched reduction           > results/reduction.txt
	$(GO) run ./cmd/raysched fading              > results/fading.txt
	$(GO) run ./cmd/raysched topology            > results/topology.md
	$(GO) run ./cmd/raysched shannon             > results/shannon.md
	$(GO) run ./cmd/raysched latency -trials 3   > results/latency.txt
	$(GO) run ./cmd/raysched baseline            > results/baseline.txt

# Run the scheduling daemon on :8080.
serve: build
	$(GO) run ./cmd/rayschedd -addr :8080

# Fuzz the topology reader (the daemon's hostile-input surface).
fuzz:
	$(GO) test ./internal/netio/ -fuzz FuzzReadNetwork -fuzztime 30s

clean:
	$(GO) clean -testcache
